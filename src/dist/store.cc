// lint:file(persistence) -- store objects must round-trip bit-exactly: %a hexfloat only.
#include "dist/store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/logging.hh"
#include "sim/wallclock.hh"

namespace hmcsim
{

namespace
{

std::string
hexKey(std::uint64_t key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace

SharedResultStore::SharedResultStore(Options opts_)
    : opts(std::move(opts_))
{
    if (opts.dir.empty())
        fatal("shared result store: empty directory");
    std::error_code ec;
    std::filesystem::create_directories(opts.dir + "/objects", ec);
    std::filesystem::create_directories(opts.dir + "/claims", ec);
    if (ec)
        fatal("shared result store: cannot create %s",
              opts.dir.c_str());
}

SharedResultStore::~SharedResultStore()
{
    MutexLock lock(mutex);
    for (const auto &entry : claims) {
        // Abandoned claims (a caller simulated but never saved, e.g.
        // an exception path): unlink so the point is immediately
        // retryable, then close to release the flock.
        ::unlink(claimPath(entry.first).c_str());
        ::close(entry.second);
    }
    claims.clear();
}

std::string
SharedResultStore::objectPath(std::uint64_t key) const
{
    const std::string hex = hexKey(key);
    return opts.dir + "/objects/" + hex.substr(0, 2) + "/" + hex +
           ".result";
}

std::string
SharedResultStore::claimPath(std::uint64_t key) const
{
    return opts.dir + "/claims/" + hexKey(key) + ".claim";
}

std::optional<CachedResult>
SharedResultStore::load(std::uint64_t key)
{
    std::ifstream in(objectPath(key));
    if (!in) {
        MutexLock lock(mutex);
        ++stats.misses;
        return std::nullopt;
    }

    std::string header;
    if (std::getline(in, header) && header == formatHeader) {
        CachedResult value;
        if (parseResultFields(in, value)) {
            MutexLock lock(mutex);
            ++stats.hits;
            return value;
        }
        warn("result store: ignoring malformed entry %s",
             objectPath(key).c_str());
        MutexLock lock(mutex);
        ++stats.corrupt;
        ++stats.misses;
        return std::nullopt;
    }

    // Prior disk formats are deliberate clean misses: the digest
    // schema may have changed underneath them, so trusting one could
    // serve a result for a *different* configuration. Re-simulate and
    // overwrite in v4.
    const bool legacy = header.rfind("hmcsim-result v", 0) == 0;
    if (!legacy)
        warn("result store: ignoring malformed entry %s",
             objectPath(key).c_str());
    MutexLock lock(mutex);
    ++(legacy ? stats.legacy : stats.corrupt);
    ++stats.misses;
    return std::nullopt;
}

void
SharedResultStore::save(std::uint64_t key, const CachedResult &value)
{
    const std::string path = objectPath(key);
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream out(tmp);
        if (!out) {
            warn("result store: cannot write %s", tmp.c_str());
            releaseClaim(key);
            return;
        }
        out << formatHeader << '\n' << serializeResultFields(value);
        if (!out.flush()) {
            warn("result store: short write to %s", tmp.c_str());
            std::filesystem::remove(tmp, ec);
            releaseClaim(key);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("result store: cannot rename %s -> %s", tmp.c_str(),
             path.c_str());
        std::filesystem::remove(tmp, ec);
    } else {
        MutexLock lock(mutex);
        ++stats.saved;
    }
    releaseClaim(key);
}

SharedResultStore::ClaimOutcome
SharedResultStore::tryClaim(std::uint64_t key)
{
    {
        MutexLock lock(mutex);
        if (claims.count(key))
            return ClaimOutcome::Acquired;
    }

    const std::string path = claimPath(key);
    // Bounded retries: each eviction (unlink + reopen) can race
    // another process doing the same; losing that race looks like
    // Busy, which the caller handles by polling again.
    for (int attempt = 0; attempt < 4; ++attempt) {
        const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
        if (fd < 0) {
            warn("result store: cannot open claim %s", path.c_str());
            return ClaimOutcome::Busy;
        }

        if (::flock(fd, LOCK_EX | LOCK_NB) == 0) {
            // We own the point now. A non-empty pre-existing record
            // means the previous owner died with the claim held (the
            // kernel released its flock) -- that is the reclaim path.
            char prev[64] = {};
            const ssize_t got = ::read(fd, prev, sizeof(prev) - 1);
            const bool stolen = got > 0;

            std::ostringstream record;
            record << "claim v1 pid " << static_cast<long>(::getpid())
                   << " expires "
                   << (wallClockEpochSeconds() + opts.leaseSeconds)
                   << '\n';
            const std::string text = record.str();
            if (::ftruncate(fd, 0) != 0 ||
                ::pwrite(fd, text.data(), text.size(), 0) < 0)
                warn("result store: cannot stamp claim %s",
                     path.c_str());

            MutexLock lock(mutex);
            claims[key] = fd;
            ++stats.claimsAcquired;
            if (stolen)
                ++stats.claimsStolen;
            return ClaimOutcome::Acquired;
        }

        // Live flock elsewhere. Honor it unless the lease expired --
        // then evict by unlinking the path: the wedged owner's flock
        // stays on the orphaned inode and a fresh claim file takes
        // the name.
        std::ifstream in(path);
        std::string word;
        std::int64_t expires = 0;
        bool parsed = false;
        while (in >> word) {
            if (word == "expires" && (in >> expires)) {
                parsed = true;
                break;
            }
        }
        ::close(fd);
        if (parsed && expires < wallClockEpochSeconds()) {
            ::unlink(path.c_str());
            {
                MutexLock lock(mutex);
                ++stats.claimsStolen;
            }
            continue;
        }
        return ClaimOutcome::Busy;
    }
    return ClaimOutcome::Busy;
}

void
SharedResultStore::releaseClaim(std::uint64_t key)
{
    int fd = -1;
    {
        MutexLock lock(mutex);
        const auto it = claims.find(key);
        if (it == claims.end())
            return;
        fd = it->second;
        claims.erase(it);
    }
    // Unlink before close: the flock guards the window, so no other
    // process can mistake the record for a live claim in between.
    ::unlink(claimPath(key).c_str());
    ::close(fd);
}

SharedResultStore::Counters
SharedResultStore::counters() const
{
    MutexLock lock(mutex);
    return stats;
}

ClaimedResultStorage::ClaimedResultStorage(SharedResultStore &store,
                                           unsigned poll_ms)
    : store(store), pollMs(poll_ms ? poll_ms : 1)
{
}

std::optional<CachedResult>
ClaimedResultStorage::load(std::uint64_t key)
{
    for (;;) {
        if (auto value = store.load(key)) {
            // Rare: the result landed between a failed load and our
            // successful claim (or a duplicate simulation elsewhere).
            store.releaseClaim(key);
            return value;
        }
        if (store.tryClaim(key) ==
            SharedResultStore::ClaimOutcome::Acquired) {
            // Re-check after winning the claim: the previous owner
            // may have published between our load and their release.
            if (auto value = store.load(key)) {
                store.releaseClaim(key);
                return value;
            }
            return std::nullopt; // Caller simulates; save() releases.
        }
        // A live claimant is simulating this point right now; their
        // result is our result (determinism), so wait for it.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(pollMs));
    }
}

void
ClaimedResultStorage::save(std::uint64_t key, const CachedResult &value)
{
    store.save(key, value); // Releases the claim.
}

} // namespace hmcsim
