/**
 * @file
 * Distributed sweep worker.
 *
 * A worker is SweepRunner's execution half as a network client: it
 * connects to a coordinator, leases batches of fully-resolved points
 * (seed included -- workers never derive anything), runs each batch
 * on its local ThreadPool with warm-start forking when the
 * coordinator asked for it, and streams the results back. Pointing a
 * worker at a shared result store (dist/store.hh) makes it consult
 * and feed the store through ResultCache: store hits skip simulation
 * entirely and claims keep two workers from simulating one point.
 *
 * Every decoded point is digest-verified against the coordinator's
 * configDigest(), so a codec regression fails loudly instead of
 * silently bending results.
 */

#ifndef HMCSIM_DIST_WORKER_HH
#define HMCSIM_DIST_WORKER_HH

#include <cstdint>
#include <string>

namespace hmcsim
{

/** One worker process's knobs. */
struct WorkerOptions
{
    /** Coordinator address: `unix:/path` or `tcp:host:port`. */
    std::string connectSpec;
    /** Local simulation threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Shared result store directory (empty = none). */
    std::string storeDir;
    /** Points requested per lease; 0 = max(jobs, 2). */
    unsigned batch = 0;
    /**
     * Test hook: sleep this long after receiving each lease before
     * simulating. Guarantees a kill signal arriving mid-run finds the
     * worker holding unprocessed leases (the CI dist-smoke job's
     * reclaim scenario).
     */
    unsigned throttleMs = 0;
    /**
     * Test hook: abruptly _exit(3) after sending this many results,
     * leaving any remaining leases outstanding for the coordinator to
     * reclaim. Negative = never.
     */
    int dieAfter = -1;
};

/** Worker-side observability counters. */
struct WorkerStats
{
    std::size_t pointsRun = 0;
    std::size_t simulated = 0;
    /** Served from the shared store instead of simulated. */
    std::size_t fromStore = 0;
};

/**
 * Serve one coordinator session to drain; returns a process exit
 * code (0 on a clean drain, 1 on connect/protocol failure).
 */
int runWorker(const WorkerOptions &opts, WorkerStats *stats = nullptr);

} // namespace hmcsim

#endif // HMCSIM_DIST_WORKER_HH
