/**
 * @file
 * Coordinator/worker protocol verbs (payloads of net.hh frames).
 *
 * Text, line-oriented, versioned at the hello. One sweep session:
 *
 *   worker -> coord   "hello v1 jobs <n>"
 *   coord  -> worker  "welcome v1 warm <0|1> points <total>"
 *   worker -> coord   "want <max>"                (worker is idle)
 *   coord  -> worker  "granted <k>"               (k may wait: the
 *                     coordinator parks the want until work exists)
 *                     ...then k frames, each:
 *                     "point <index> <digest-hex>\n<wire config>"
 *   worker -> coord   "result <index> <simulated>\n<result fields>"
 *                     (k times, then the next want)
 *   coord  -> worker  "drain"                     (no work will ever
 *                     come; worker exits)
 *
 * The worker recomputes configDigest() over every decoded point and
 * refuses a mismatch; the result body is the exact serialized field
 * set ResultCache persists, so a result round-trips bit-identically
 * from worker to coordinator to sink. Lease reclaim is implicit:
 * a worker connection dying returns its outstanding indices to the
 * pending queue.
 */

#ifndef HMCSIM_DIST_PROTOCOL_HH
#define HMCSIM_DIST_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace hmcsim
{

/** Bump when any verb or payload layout changes incompatibly. */
constexpr const char *distProtocolVersion = "v1";

/** "hello v1 jobs <n>" */
std::string formatHello(unsigned jobs);
bool parseHello(const std::string &line, unsigned &jobs);

/** "welcome v1 warm <0|1> points <total>" */
std::string formatWelcome(bool warm_start, std::size_t total_points);
bool parseWelcome(const std::string &line, bool &warm_start,
                  std::size_t &total_points);

/** "want <max>" */
std::string formatWant(unsigned max_points);
bool parseWant(const std::string &line, unsigned &max_points);

/** "granted <k>" */
std::string formatGranted(std::size_t count);
bool parseGranted(const std::string &line, std::size_t &count);

/** "drain" */
std::string formatDrain();
bool isDrain(const std::string &line);

/** "point <index> <digest-hex>" + '\n' + wire-encoded config. */
std::string formatPoint(std::size_t index, std::uint64_t digest,
                        const std::string &config_blob);
bool parsePointHeader(const std::string &line, std::size_t &index,
                      std::uint64_t &digest);

/** "result <index> <simulated>" + '\n' + serialized result fields. */
std::string formatResult(std::size_t index, bool simulated,
                         const std::string &fields_blob);
bool parseResultHeader(const std::string &line, std::size_t &index,
                       bool &simulated);

/** Split a frame payload at its first newline: header line + body. */
void splitFrame(const std::string &payload, std::string &header,
                std::string &body);

} // namespace hmcsim

#endif // HMCSIM_DIST_PROTOCOL_HH
