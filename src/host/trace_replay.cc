#include "host/trace_replay.hh"

#include <memory>

#include "hmc/device.hh"
#include "host/hmc_controller.hh"

namespace hmcsim
{

namespace
{

/** Event-driven trace driver (the role GUPS ports play for synthetic
 *  traffic). */
class TraceDriver
{
  public:
    TraceDriver(const Trace &trace, const TraceReplayConfig &cfg)
        : trace(trace),
          cfg(cfg),
          device(cfg.device),
          controller(cfg.controller, queue, device,
                     [this](const Packet &pkt) { onResponse(pkt); })
    {
    }

    TraceReplayResult
    run()
    {
        tryIssue();
        queue.runToCompletion();

        TraceReplayResult res;
        res.elapsed = queue.now();
        const double seconds = ticksToSeconds(res.elapsed);
        if (seconds > 0.0) {
            res.rawGBps = toGBps(static_cast<double>(rawBytes) / seconds);
            res.payloadGBps =
                toGBps(static_cast<double>(payloadBytes) / seconds);
            res.mrps = static_cast<double>(completed) / seconds / 1e6;
        }
        res.latencyNs = latencies;
        return res;
    }

  private:
    void
    tryIssue()
    {
        if (issuePending)
            return;
        if (nextIndex >= trace.size() || outstanding >= cfg.maxOutstanding)
            return;
        issuePending = true;
        const Tick when =
            nextIssueAllowed > queue.now() ? nextIssueAllowed : queue.now();
        queue.schedule(when, [this] {
            issuePending = false;
            issueOne();
        });
    }

    void
    issueOne()
    {
        if (nextIndex >= trace.size() ||
            outstanding >= cfg.maxOutstanding)
            return;
        const TraceEntry &entry = trace[nextIndex];
        Packet pkt;
        pkt.id = nextIndex;
        pkt.cmd = entry.op;
        pkt.addr = entry.addr;
        pkt.payload = entry.size;
        // Spread records over the nine GUPS ports / two links.
        pkt.port = static_cast<std::uint8_t>(nextIndex % gupsPortCount);
        pkt.link = pkt.port < 5 ? 0 : 1;
        pkt.tIssued = queue.now();
        ++nextIndex;
        ++outstanding;
        nextIssueAllowed = queue.now() + cfg.issueInterval;
        controller.submitRequest(std::move(pkt));
        tryIssue();
    }

    void
    onResponse(const Packet &pkt)
    {
        --outstanding;
        ++completed;
        latencies.sample(ticksToNs(queue.now() - pkt.tIssued));
        rawBytes += transactionBytes(pkt.cmd, pkt.payload);
        payloadBytes += pkt.payload;
        tryIssue();
    }

    const Trace &trace;
    TraceReplayConfig cfg;
    EventQueue queue;
    HmcDevice device;
    HmcController controller;
    std::size_t nextIndex = 0;
    unsigned outstanding = 0;
    std::uint64_t completed = 0;
    Bytes rawBytes = 0;
    Bytes payloadBytes = 0;
    SampleStats latencies;
    bool issuePending = false;
    Tick nextIssueAllowed = 0;
};

} // namespace

TraceReplayResult
replayTrace(const Trace &trace, const TraceReplayConfig &cfg)
{
    TraceDriver driver(trace, cfg);
    return driver.run();
}

} // namespace hmcsim
