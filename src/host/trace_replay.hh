/**
 * @file
 * Trace replay against the simulated AC-510 + HMC platform.
 *
 * Issues trace records in order through the HMC controller, keeping a
 * configurable number in flight. maxOutstanding = 1 honors strict
 * dependence (pointer chases); larger windows model host-side request
 * buffering, up to the platform's 9 x 64 tag limit.
 */

#ifndef HMCSIM_HOST_TRACE_REPLAY_HH
#define HMCSIM_HOST_TRACE_REPLAY_HH

#include "gups/trace.hh"
#include "host/ac510.hh"
#include "sim/stats.hh"

namespace hmcsim
{

/** Replay configuration. */
struct TraceReplayConfig
{
    /** Maximum requests in flight (1 = dependent chain). */
    unsigned maxOutstanding = 64;
    /** Minimum spacing between issues (one FPGA cycle). */
    Tick issueInterval = 5333;
    /** Platform overrides. */
    HmcDeviceConfig device;
    ControllerCalibration controller;
};

/** Result of replaying a trace. */
struct TraceReplayResult
{
    double rawGBps = 0.0;
    double payloadGBps = 0.0;
    double mrps = 0.0;
    /** Per-request round-trip latencies (ns). */
    SampleStats latencyNs;
    /** Simulated time to drain the whole trace. */
    Tick elapsed = 0;
};

/** Replay @p trace and measure it. */
TraceReplayResult replayTrace(const Trace &trace,
                              const TraceReplayConfig &cfg =
                                  TraceReplayConfig{});

} // namespace hmcsim

#endif // HMCSIM_HOST_TRACE_REPLAY_HH
