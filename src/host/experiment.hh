/**
 * @file
 * Experiment runner: builds an AC-510 system, runs warm-up and
 * measurement phases, and reports the quantities the paper plots.
 *
 * This is the software layer standing in for the Pico API + host
 * programs of Sec. III-B: it configures ports (type, size, masks,
 * addressing mode), runs for a fixed interval, then reads access
 * counts and min/aggregate/max latencies, exactly mirroring the
 * full-scale / small-scale / stream GUPS methodology.
 */

#ifndef HMCSIM_HOST_EXPERIMENT_HH
#define HMCSIM_HOST_EXPERIMENT_HH

#include <cstdint>
#include <string>

#include "gups/patterns.hh"
#include "host/ac510.hh"
#include "power/power_model.hh"
#include "protocol/packet.hh"
#include "sim/stats.hh"
#include "trace/lifecycle.hh"

namespace hmcsim
{

/**
 * Fields shared by every experiment flavor (bandwidth/latency and
 * stream-GUPS). Factoring them out keeps the two configs in sync and
 * lets the runner's configDigest() cover both with one serializer
 * (runner/config_digest.hh).
 */
struct CommonExperimentConfig
{
    /** Where traffic may land; default is the whole device. */
    AccessPattern pattern{"16 vaults", 0, 0, 16, 256};
    Bytes requestSize = 128;
    std::uint64_t seed = 1;
    /** Optional overrides of the modeled hardware. */
    HmcDeviceConfig device;
    ControllerCalibration controller;
};

/** One bandwidth/latency experiment's configuration. */
struct ExperimentConfig : CommonExperimentConfig
{
    RequestMix mix = RequestMix::ReadOnly;
    AddressingMode mode = AddressingMode::Random;
    /** Active ports: 9 = full-scale GUPS, 1..8 = small-scale. */
    unsigned numPorts = maxGupsPorts;
    /** Simulated warm-up discarded from the measurement. */
    Tick warmup = 100 * tickUs;
    /** Simulated measurement window. The hardware runs 20 s; the
     *  simulation reaches steady state within microseconds, so a
     *  1 ms window gives tight statistics in reasonable CPU time. */
    Tick measure = 1 * tickMs;
};

/** Measured outcome of one experiment (the paper's plot units). */
struct MeasurementResult
{
    std::string patternName;
    RequestMix mix;
    Bytes requestSize;
    /** Raw bandwidth: request+response bytes incl. header/tail, GB/s
     *  (the paper's Figs. 6-10, 13, 16-18 y/x axes). */
    double rawGBps = 0.0;
    /** Million requests per second, reads + writes (Fig. 8 lines). */
    double mrps = 0.0;
    double readMrps = 0.0;
    double writeMrps = 0.0;
    double readPayloadGBps = 0.0;
    double writePayloadGBps = 0.0;
    /** Read round-trip latency statistics over the window (ns). */
    SampleStats readLatencyNs;
    SampleStats writeLatencyNs;
    /** Tail latency from the binned distribution (ns). */
    double readLatencyP50Ns = 0.0;
    double readLatencyP99Ns = 0.0;
    double readLatencyP999Ns = 0.0;
    /** Per-stage latency breakdown (trace/lifecycle.hh); populated
     *  only when the run had tracing enabled, else stages.enabled is
     *  false and every accumulator is empty. */
    StageBreakdown stages;

    /** Traffic summary for the power/thermal models. */
    TrafficSummary traffic() const;
};

/** Build the Ac510 system description an experiment runs on. */
Ac510Config makeSystemConfig(const ExperimentConfig &cfg);

/** Options applied to one runExperiment/runStreamExperiment call. */
struct RunOptions
{
    /** Lifecycle tracing (off by default: the zero-cost path). */
    TraceConfig trace;
};

/**
 * Secondary outputs of a run, produced when the caller passes a
 * non-null artifacts pointer.
 */
struct RunArtifacts
{
    /**
     * Bit-exact StatRegistry::digest() of the run's full counter
     * state -- the fingerprint the sweep runner uses to prove that a
     * parallel run reproduced the serial one exactly. Computed only
     * for runExperiment (stream experiments build one system per
     * repetition; their digest stays 0).
     */
    std::uint64_t statDigest = 0;
    /** Per-stage breakdown; enabled only when tracing was on. */
    StageBreakdown stages;
};

/**
 * Run a bandwidth/latency experiment.
 *
 * @param opts Per-run options (tracing).
 * @param artifacts When non-null, receives the stat digest and, with
 *        tracing enabled, the per-stage breakdown.
 */
MeasurementResult runExperiment(const ExperimentConfig &cfg,
                                const RunOptions &opts = {},
                                RunArtifacts *artifacts = nullptr);

/**
 * A simulator warmed to cfg.warmup and parked, ready to be forked.
 *
 * prepareWarmStart() pays the warm-up cost once; runExperimentFrom()
 * then serves any config with the same warmupDigest() by forking the
 * parked module (Ac510Module::fork) and running only the measurement
 * window. The module is quiescent between runs and fork() is
 * read-only, so one WarmStart may serve many threads concurrently
 * (the sweep runner's warm-start mode does exactly that).
 */
struct WarmStart
{
    /** The config the module was built and warmed from. */
    ExperimentConfig config;
    /** The warmed simulator, advanced to exactly config.warmup. */
    std::unique_ptr<Ac510Module> module;
};

/**
 * Build a simulator from @p cfg and run it to cfg.warmup (tracing
 * unsupported: fork() rejects it). The returned state is immutable
 * input for runExperimentFrom().
 */
WarmStart prepareWarmStart(const ExperimentConfig &cfg);

/**
 * Run @p cfg's measurement window on a fork of @p warm instead of
 * re-simulating the warm-up. Requires warmupDigest(warm.config) ==
 * warmupDigest(cfg) (checked fatal): under that precondition the fork
 * is in exactly the state a cold run of @p cfg would be in at
 * cfg.warmup, so the result and artifacts->statDigest are
 * bit-identical to runExperiment(cfg) (tests/test_snapshot_fork.cc).
 * Read-only on @p warm; safe to call concurrently from many threads
 * against one WarmStart.
 */
MeasurementResult runExperimentFrom(const WarmStart &warm,
                                    const ExperimentConfig &cfg,
                                    RunArtifacts *artifacts = nullptr);

/**
 * Deprecated compatibility shim (pre-RunOptions API): equivalent to
 * calling the overload above and copying artifacts.statDigest into
 * @p statDigest. Prefer the RunOptions/RunArtifacts overload; this
 * one will be removed after one release.
 */
MeasurementResult runExperiment(const ExperimentConfig &cfg,
                                std::uint64_t *statDigest);

/**
 * Deprecated compatibility shim (pre-backend API): runs @p cfg with
 * the vault storage forced to the DDR4 backend. Equivalent to setting
 * cfg.device.vault.backend.kind = BackendKind::Ddr4 and calling
 * runExperiment. Prefer selecting the backend through the config --
 * hmcsim-lint's deprecated-ddr-entry rule flags new callers.
 */
MeasurementResult runDdrBaselineExperiment(
    const ExperimentConfig &cfg, const RunOptions &opts = {},
    RunArtifacts *artifacts = nullptr);

/** Outcome of a determinism self-check (two identical runs). */
struct SelfCheckResult
{
    /** Stat-registry digest of each run. */
    std::uint64_t digestFirst = 0;
    std::uint64_t digestSecond = 0;
    /** Statistics registered (identical structure both runs). */
    std::size_t numStats = 0;
    /** Name of the first statistic whose value differed, if any. */
    std::string firstMismatch;
    bool identical() const { return digestFirst == digestSecond; }
};

/**
 * Determinism self-check: build the same system twice from @p cfg,
 * run both for warmup+measure, and compare bit-exact stat-registry
 * digests. Catches iteration-order and uninitialized-read
 * nondeterminism that sanitizers and the invariant checkers miss --
 * a simulation whose result depends on allocator layout produces
 * different digests here long before anyone notices a wobbly figure.
 */
SelfCheckResult runSelfCheck(const ExperimentConfig &cfg);

/** A measurement plus its steady-state power/thermal solution. */
struct ThermalExperimentResult
{
    MeasurementResult measurement;
    PowerThermalResult powerThermal;
};

/**
 * Run an experiment under a cooling configuration and solve the
 * coupled power/thermal steady state (the paper's 200 s methodology
 * reaches exactly this fixed point).
 */
ThermalExperimentResult runThermalExperiment(
    const ExperimentConfig &cfg, const CoolingConfig &cooling,
    const PowerParams &power = PowerParams{},
    const ThermalParams &thermal = ThermalParams{},
    const RunOptions &opts = {}, RunArtifacts *artifacts = nullptr);

/** Configuration of a stream-GUPS low-load latency experiment. */
struct StreamExperimentConfig : CommonExperimentConfig
{
    /** Read requests per stream (Fig. 15 x-axis: 2..28). */
    unsigned requestsPerStream = 2;
    /** Independent repetitions aggregated into the statistics. */
    unsigned repetitions = 64;
};

/**
 * Run a stream-GUPS experiment: issue fixed-size groups of reads from
 * one port, wait for all responses, and aggregate per-request
 * latencies (min/avg/max) over the repetitions.
 *
 * With tracing enabled in @p opts, one tracer spans every repetition,
 * so artifacts->stages aggregates all requestsPerStream * repetitions
 * lifecycles (the Fig. 15 low-load decomposition).
 */
SampleStats runStreamExperiment(const StreamExperimentConfig &cfg,
                                const RunOptions &opts = {},
                                RunArtifacts *artifacts = nullptr);

} // namespace hmcsim

#endif // HMCSIM_HOST_EXPERIMENT_HH
