#include "host/ac510.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "trace/lifecycle.hh"

namespace hmcsim
{

Ac510Module::Ac510Module(const Ac510Config &cfg) : cfg(cfg)
{
    if (cfg.numPorts == 0 || cfg.numPorts > maxGupsPorts)
        fatal("AC-510 supports 1..%u GUPS ports (got %u)", maxGupsPorts,
              cfg.numPorts);

    _device = std::make_unique<HmcDevice>(cfg.device);
    _controller = std::make_unique<HmcController>(
        cfg.controller, _queue, *_device,
        [this](const Packet &pkt) { ports.at(pkt.port)->onResponse(pkt); });

    if (!cfg.perPort.empty() && cfg.perPort.size() < cfg.numPorts)
        fatal("perPort overrides cover %zu of %u ports",
              cfg.perPort.size(), cfg.numPorts);

    for (unsigned i = 0; i < cfg.numPorts; ++i) {
        GupsPortConfig port_cfg =
            cfg.perPort.empty() ? cfg.port : cfg.perPort[i];
        // Ports distribute their packets over however many links the
        // controller was calibrated with.
        port_cfg.numLinks = cfg.controller.numLinks;
        port_cfg.tracer = cfg.tracer;
        ports.push_back(std::make_unique<GupsPort>(
            i, port_cfg, cfg.device.structure.capacity, _queue,
            [this](Packet &&pkt) {
                _controller->submitRequest(std::move(pkt));
            },
            cfg.seed));
    }

    // Debug builds audit every model invariant as the queue drains;
    // release builds skip the sweep unless a caller opts in. The
    // sweep touches every port's tag pool and every vault's banks, so
    // the automatic interval is throttled -- violations still surface
    // within 64 events of the offending one, and targeted debugging
    // can call enableInvariantChecks(1) for event-exact blame.
    if (dchecksEnabled())
        enableInvariantChecks(64);
}

void
Ac510Module::enableInvariantChecks(std::uint64_t every_n)
{
    _checkers.clear();
    _controller->registerCheckers(_checkers, "system.controller");
    _device->registerCheckers(_checkers, "system.hmc");
    for (unsigned i = 0; i < ports.size(); ++i)
        ports[i]->registerCheckers(_checkers,
                                   "system.port" + std::to_string(i));
    _queue.setCheckers(&_checkers, every_n);
}

void
Ac510Module::start()
{
    for (auto &port : ports)
        port->start();
}

void
Ac510Module::stop()
{
    for (auto &port : ports)
        port->stop();
}

bool
Ac510Module::allPortsIdle() const
{
    for (const auto &port : ports) {
        if (!port->idle())
            return false;
    }
    return true;
}

void
Ac510Module::resetPortStats()
{
    for (auto &port : ports)
        port->resetStats();
    if (cfg.tracer)
        cfg.tracer->resetStats();
}

void
Ac510Module::registerStats(StatRegistry &registry,
                           const StatPath &path) const
{
    _controller->registerStats(registry, path / "controller");
    _device->registerStats(registry, path / "hmc");
    for (unsigned i = 0; i < ports.size(); ++i)
        ports[i]->registerStats(registry,
                                path / ("port" + std::to_string(i)));
    // Only an attached tracer contributes stats, so a tracing-off run
    // registers the same set as before tracing existed and its digest
    // is unchanged (tested in tests/test_tracing.cc).
    if (cfg.tracer)
        cfg.tracer->registerStats(registry, path / "trace");
}

std::unique_ptr<Ac510Module>
Ac510Module::fork() const
{
    // Config-time validation of the fork restrictions.
    // lint:allow(hot-check)
    HMCSIM_CHECK(cfg.tracer == nullptr,
                 "fork does not support lifecycle tracing (the tracer "
                 "is caller-owned state outside the snapshot)");
    for (const auto &port : ports) {
        // lint:allow(hot-check)
        HMCSIM_CHECK(port->config().arrivals == nullptr,
                     "fork does not support open-loop arrival feeds "
                     "(the feed is caller-owned state outside the "
                     "snapshot)");
    }

    auto fork_module = std::make_unique<Ac510Module>(cfg);

    // Component state first: the controller's restore clones the
    // packet pool and registers its block extents in the fixup map,
    // which event relocation below depends on.
    SnapshotFixup fixup;
    fork_module->_controller->restoreFrom(*_controller, fixup);
    fork_module->_device->restoreFrom(*_device);
    for (std::size_t i = 0; i < ports.size(); ++i)
        fork_module->ports[i]->restoreFrom(*ports[i], fixup);

    // Pending events: the audited main-path capture set. Anything
    // else in the queue (test scaffolding, replay feeds) makes
    // cloneEventQueue abort rather than fork a silently wrong world.
    const std::vector<EventRelocator> relocators = {
        makeEventRelocator<GupsPort::IssueEvent>("gups.issue"),
        makeEventRelocator<HmcController::CubeArriveEvent>(
            "controller.cube_arrive"),
        makeEventRelocator<HmcController::ResponseReadyEvent>(
            "controller.response_ready"),
        makeEventRelocator<HmcController::DeliveredEvent>(
            "controller.delivered"),
    };
    cloneEventQueue(_queue, fork_module->_queue, fixup, relocators);
    return fork_module;
}

GupsPortStats
Ac510Module::aggregateStats() const
{
    GupsPortStats agg;
    for (const auto &port : ports) {
        const GupsPortStats &s = port->stats();
        agg.readsIssued += s.readsIssued;
        agg.writesIssued += s.writesIssued;
        agg.readsCompleted += s.readsCompleted;
        agg.writesCompleted += s.writesCompleted;
        agg.rawBytes += s.rawBytes;
        agg.readPayloadBytes += s.readPayloadBytes;
        agg.writePayloadBytes += s.writePayloadBytes;
        agg.thermalFailures += s.thermalFailures;
        agg.readLatencyNs.merge(s.readLatencyNs);
        agg.writeLatencyNs.merge(s.writeLatencyNs);
        agg.readLatencyHistNs.merge(s.readLatencyHistNs);
    }
    return agg;
}

} // namespace hmcsim
