#include "host/experiment.hh"

#include <cstring>
#include <optional>
#include <utility>
#include <vector>

namespace hmcsim
{

TrafficSummary
MeasurementResult::traffic() const
{
    TrafficSummary t;
    t.rawGBps = rawGBps;
    t.readPayloadGBps = readPayloadGBps;
    t.writePayloadGBps = writePayloadGBps;
    t.readMrps = readMrps;
    t.writeMrps = writeMrps;
    return t;
}

Ac510Config
makeSystemConfig(const ExperimentConfig &cfg)
{
    Ac510Config sys;
    sys.numPorts = cfg.numPorts;
    sys.port.mix = cfg.mix;
    sys.port.requestSize = cfg.requestSize;
    sys.port.mode = cfg.mode;
    sys.port.mask = cfg.pattern.mask;
    sys.port.antiMask = cfg.pattern.antiMask;
    sys.device = cfg.device;
    sys.controller = cfg.controller;
    sys.seed = cfg.seed;
    return sys;
}

namespace
{

/**
 * Fold the module's aggregate port counters into the paper's plot
 * units. Shared verbatim by the cold (runExperiment) and warm-start
 * (runExperimentFrom) paths, so a forked run can never diverge from a
 * cold run in how the measurement is reported.
 */
MeasurementResult
summarize(const Ac510Module &module, const ExperimentConfig &cfg)
{
    const GupsPortStats agg = module.aggregateStats();
    const double seconds = ticksToSeconds(cfg.measure);

    MeasurementResult res;
    res.patternName = cfg.pattern.name;
    res.mix = cfg.mix;
    res.requestSize = cfg.requestSize;
    res.rawGBps = toGBps(static_cast<double>(agg.rawBytes) / seconds);
    res.readMrps =
        static_cast<double>(agg.readsCompleted) / seconds / 1e6;
    res.writeMrps =
        static_cast<double>(agg.writesCompleted) / seconds / 1e6;
    res.mrps = res.readMrps + res.writeMrps;
    res.readPayloadGBps =
        toGBps(static_cast<double>(agg.readPayloadBytes) / seconds);
    res.writePayloadGBps =
        toGBps(static_cast<double>(agg.writePayloadBytes) / seconds);
    res.readLatencyNs = agg.readLatencyNs;
    res.writeLatencyNs = agg.writeLatencyNs;
    if (agg.readLatencyHistNs.totalSamples() > 0) {
        res.readLatencyP50Ns = agg.readLatencyHistNs.quantile(0.5);
        res.readLatencyP99Ns = agg.readLatencyHistNs.quantile(0.99);
        res.readLatencyP999Ns = agg.readLatencyHistNs.quantile(0.999);
    }
    return res;
}

} // namespace

MeasurementResult
runExperiment(const ExperimentConfig &cfg, const RunOptions &opts,
              RunArtifacts *artifacts)
{
    Ac510Config sys = makeSystemConfig(cfg);
    std::optional<PacketTracer> tracer;
    if (opts.trace.enabled) {
        tracer.emplace(opts.trace);
        sys.tracer = &*tracer;
    }

    Ac510Module module(sys);
    StatRegistry registry;
    if (artifacts)
        module.registerStats(registry, StatPath("system"));
    module.start();
    module.runUntil(cfg.warmup);
    module.resetPortStats();
    module.runUntil(cfg.warmup + cfg.measure);
    if (artifacts)
        artifacts->statDigest = registry.digest();

    MeasurementResult res = summarize(module, cfg);
    if (tracer) {
        res.stages = tracer->breakdown();
        if (artifacts)
            artifacts->stages = tracer->breakdown();
    }
    return res;
}

WarmStart
prepareWarmStart(const ExperimentConfig &cfg)
{
    WarmStart warm;
    warm.config = cfg;
    warm.module = std::make_unique<Ac510Module>(makeSystemConfig(cfg));
    warm.module->start();
    warm.module->runUntil(cfg.warmup);
    return warm;
}

MeasurementResult
runExperimentFrom(const WarmStart &warm, const ExperimentConfig &cfg,
                  RunArtifacts *artifacts)
{
    // The binding precondition is warmupDigest(warm.config) ==
    // warmupDigest(cfg), enforced by the sweep runner's grouping (the
    // digest serializer lives in the runner layer above this one).
    // Guard the obvious misuses here with the cheap field subset.
    // lint:allow(hot-check)
    HMCSIM_CHECK(warm.config.seed == cfg.seed &&
                     warm.config.warmup == cfg.warmup &&
                     warm.config.mix == cfg.mix &&
                     warm.config.requestSize == cfg.requestSize &&
                     warm.config.mode == cfg.mode &&
                     warm.config.numPorts == cfg.numPorts &&
                     warm.config.pattern.mask == cfg.pattern.mask &&
                     warm.config.pattern.antiMask ==
                         cfg.pattern.antiMask,
                 "runExperimentFrom: config's warm-up phase differs "
                 "from the WarmStart's");

    // Identical to the cold path from cfg.warmup on: the fork holds
    // exactly the state the cold run holds after its own warm-up, the
    // stat registration calls are the same set, and the measurement
    // is summarized by the same helper.
    std::unique_ptr<Ac510Module> module = warm.module->fork();
    StatRegistry registry;
    if (artifacts)
        module->registerStats(registry, StatPath("system"));
    module->resetPortStats();
    module->runUntil(cfg.warmup + cfg.measure);
    if (artifacts)
        artifacts->statDigest = registry.digest();
    return summarize(*module, cfg);
}

MeasurementResult
runExperiment(const ExperimentConfig &cfg, std::uint64_t *statDigest)
{
    RunArtifacts artifacts;
    MeasurementResult res = runExperiment(
        cfg, RunOptions{}, statDigest ? &artifacts : nullptr);
    if (statDigest)
        *statDigest = artifacts.statDigest;
    return res;
}

MeasurementResult
runDdrBaselineExperiment(const ExperimentConfig &cfg,
                         const RunOptions &opts, RunArtifacts *artifacts)
{
    ExperimentConfig ddr = cfg;
    ddr.device.vault.backend.kind = BackendKind::Ddr4;
    return runExperiment(ddr, opts, artifacts);
}

SelfCheckResult
runSelfCheck(const ExperimentConfig &cfg)
{
    struct Run
    {
        std::uint64_t digest;
        std::vector<std::pair<std::string, double>> values;
    };

    const auto once = [&cfg]() -> Run {
        Ac510Module module(makeSystemConfig(cfg));
        StatRegistry registry;
        module.registerStats(registry, StatPath("system"));
        module.start();
        module.runUntil(cfg.warmup);
        module.resetPortStats();
        module.runUntil(cfg.warmup + cfg.measure);

        Run run;
        run.digest = registry.digest();
        for (const StatEntry *entry : registry.matching(""))
            run.values.emplace_back(entry->name, entry->value());
        return run;
    };

    const Run first = once();
    const Run second = once();

    SelfCheckResult res;
    res.digestFirst = first.digest;
    res.digestSecond = second.digest;
    res.numStats = first.values.size();
    if (!res.identical()) {
        for (std::size_t i = 0;
             i < first.values.size() && i < second.values.size(); ++i) {
            // Bit-exact value comparison (matches the digest; a NaN
            // with identical bits is *not* a mismatch).
            if (first.values[i].first != second.values[i].first ||
                std::memcmp(&first.values[i].second,
                            &second.values[i].second,
                            sizeof(double)) != 0) {
                res.firstMismatch = first.values[i].first;
                break;
            }
        }
        if (res.firstMismatch.empty())
            res.firstMismatch = "<registry structure differs>";
    }
    return res;
}

ThermalExperimentResult
runThermalExperiment(const ExperimentConfig &cfg,
                     const CoolingConfig &cooling,
                     const PowerParams &power,
                     const ThermalParams &thermal,
                     const RunOptions &opts, RunArtifacts *artifacts)
{
    ThermalExperimentResult res;
    res.measurement = runExperiment(cfg, opts, artifacts);
    const PowerModel model(power);
    res.powerThermal =
        model.solve(res.measurement.traffic(), cfg.mix, cooling, thermal);
    return res;
}

SampleStats
runStreamExperiment(const StreamExperimentConfig &cfg,
                    const RunOptions &opts, RunArtifacts *artifacts)
{
    // One tracer spans every repetition so the breakdown aggregates
    // the whole experiment, not just the last stream.
    std::optional<PacketTracer> tracer;
    if (opts.trace.enabled)
        tracer.emplace(opts.trace);

    SampleStats latencies;
    for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
        Ac510Config sys;
        sys.numPorts = 1;
        sys.port.mix = RequestMix::ReadOnly;
        sys.port.requestSize = cfg.requestSize;
        sys.port.mode = AddressingMode::Random;
        sys.port.mask = cfg.pattern.mask;
        sys.port.antiMask = cfg.pattern.antiMask;
        sys.port.requestBudget = cfg.requestsPerStream;
        sys.device = cfg.device;
        sys.controller = cfg.controller;
        sys.seed = cfg.seed + rep * 1000003ULL;
        if (tracer)
            sys.tracer = &*tracer;

        Ac510Module module(sys);
        module.start();
        module.runToCompletion();
        latencies.merge(module.aggregateStats().readLatencyNs);
    }
    if (artifacts && tracer)
        artifacts->stages = tracer->breakdown();
    return latencies;
}

} // namespace hmcsim
