/**
 * @file
 * The AC-510 accelerator module: a Kintex UltraScale FPGA running
 * GUPS and a Micron HMC controller, wired to a 4 GB HMC 1.1 over two
 * half-width 15 Gbps links (Sec. III-A).
 *
 * This class assembles the full simulated system used by every
 * experiment: event queue, GUPS ports, HMC controller, and the cube.
 *
 * Threading contract (relied on by runner/sweep.hh): one simulator
 * per thread, no cross-thread sharing. An Ac510Module and everything
 * it owns (event queue, ports, controller, device, checkers, any
 * StatRegistry it registered into) must be constructed, run, and
 * destroyed on a single thread. Distinct modules on distinct threads
 * are fully independent: the simulation core keeps no process-global
 * mutable state (the check layer's current tick is thread-local, the
 * logging sink is internally synchronized, and StatRegistry /
 * CheckerRegistry are per-instance). Audited for PR 2; keep it that
 * way -- any new global in src/ must be immutable, thread-local, or
 * internally locked.
 */

#ifndef HMCSIM_HOST_AC510_HH
#define HMCSIM_HOST_AC510_HH

#include <memory>
#include <vector>

#include "gups/gups_port.hh"
#include "hmc/device.hh"
#include "host/calibration.hh"
#include "host/hmc_controller.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"

namespace hmcsim
{

/** System-level configuration. */
struct Ac510Config
{
    /** Active GUPS ports: 9 = full-scale, fewer = small-scale. */
    unsigned numPorts = 9;
    /** Port configuration applied to every active port... */
    GupsPortConfig port;
    /**
     * ...unless per-port overrides are given (the hardware configures
     * each port's type/size/masks independently, Sec. III-B). When
     * non-empty, entry i configures port i; must cover numPorts.
     */
    std::vector<GupsPortConfig> perPort;
    /** Cube configuration. */
    HmcDeviceConfig device;
    /** Controller calibration. */
    ControllerCalibration controller;
    /** Experiment seed. */
    std::uint64_t seed = 1;
    /**
     * Lifecycle tracer attached to every port (trace/lifecycle.hh);
     * null (the default) disables tracing entirely. Caller-owned,
     * like the StatRegistry; must outlive the module and obeys the
     * same one-thread contract.
     */
    PacketTracer *tracer = nullptr;
};

/** Maximum usable GUPS ports (one of ten is reserved for system). */
constexpr unsigned maxGupsPorts = gupsPortCount;

/** The assembled accelerator module. */
class Ac510Module
{
  public:
    explicit Ac510Module(const Ac510Config &cfg);

    /** Start all ports issuing. */
    void start();
    /** Stop all ports (outstanding requests drain). */
    void stop();

    /** Run the simulation until @p limit. */
    void runUntil(Tick limit) { _queue.runUntil(limit); }
    /** Run until every event (including drains) completes. */
    void runToCompletion() { _queue.runToCompletion(); }

    /** True when every port has no outstanding requests. */
    bool allPortsIdle() const;

    /** Clear all port monitoring counters (end of warm-up). */
    void resetPortStats();

    /** Sum of port statistics. */
    GupsPortStats aggregateStats() const;

    /**
     * Register every component's counters under @p path
     * (controller, cube + vaults, each port). The module must
     * outlive the registry.
     */
    void registerStats(StatRegistry &registry, const StatPath &path) const;

    /**
     * Attach every component's invariant checkers to the event
     * queue's drain points. Called automatically by the constructor
     * when debug checks are compiled in (HMCSIM_DCHECK_ENABLED);
     * callable explicitly in release builds for targeted debugging.
     * @param every_n Run the checkers after every n-th event.
     */
    void enableInvariantChecks(std::uint64_t every_n = 1);

    /** The module's checker registry (empty until enabled). */
    CheckerRegistry &checkers() { return _checkers; }

    /**
     * Fork this simulator: build a fresh module from the same config
     * and copy the complete dynamic state into it -- backend/bank
     * state, link serializers and RNG streams, port generators, the
     * packet pool, and every pending event (relocated through a
     * SnapshotFixup pointer map; sim/snapshot.hh). The fork then runs
     * exactly the event sequence this module would have run, producing
     * byte-identical statistics (tests/test_snapshot_fork.cc).
     *
     * Read-only on this module, so multiple threads may fork one
     * quiescent warm module concurrently (the sweep runner's
     * warm-start mode relies on this; see runner/sweep.hh). Restricted
     * to the audited main-path configurations: tracing and open-loop
     * arrival feeds are rejected, and an unrecognized pending event
     * type is fatal.
     */
    std::unique_ptr<Ac510Module> fork() const;

    EventQueue &queue() { return _queue; }
    HmcDevice &device() { return *_device; }
    HmcController &controller() { return *_controller; }
    GupsPort &port(unsigned idx) { return *ports.at(idx); }
    unsigned numPorts() const
    {
        return static_cast<unsigned>(ports.size());
    }
    const Ac510Config &config() const { return cfg; }

  private:
    Ac510Config cfg;
    EventQueue _queue;
    std::unique_ptr<HmcDevice> _device;
    std::unique_ptr<HmcController> _controller;
    std::vector<std::unique_ptr<GupsPort>> ports;
    CheckerRegistry _checkers;
};

} // namespace hmcsim

#endif // HMCSIM_HOST_AC510_HH
