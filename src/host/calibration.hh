/**
 * @file
 * Calibration constants of the FPGA-side HMC controller model.
 *
 * The latency constants follow the paper's own deconstruction of the
 * Micron HMC controller (Fig. 14, Sec. IV-E1): at 187.5 MHz, up to 54
 * cycles (~287 ns) are spent on the TX path and ~260 ns on the RX
 * path, so ~547 ns of every measured round trip is FPGA
 * infrastructure.
 *
 * The bandwidth constants derate the raw 30 GB/s per direction to
 * what the AC-510 achieves in the paper's measurements:
 *
 *  - TX injection: the FPGA controller datapath feeds each link at
 *    ~7.5 GB/s of packet bytes. This makes write-only 128 B traffic
 *    top out near 14-15 GB/s raw and read-modify-write near 27 GB/s
 *    (Fig. 7; rw counts both transaction directions and is, like wo,
 *    TX-bound, which is why rw lands at roughly double wo).
 *  - RX accept: responses are deserialized, verified, and routed at
 *    ~10.5 GB/s per link with a per-packet cost equivalent to 24 B.
 *    This yields read-only raw bandwidth of ~20-22 GB/s at 128 B and
 *    the Fig. 8 behavior that bandwidth is nearly flat across request
 *    sizes while requests/second roughly double from 128 B to 32 B.
 */

#ifndef HMCSIM_HOST_CALIBRATION_HH
#define HMCSIM_HOST_CALIBRATION_HH

#include "link/link.hh"
#include "sim/clocked.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** All tunable constants of the controller model. */
struct ControllerCalibration
{
    /** FPGA user-clock period (187.5 MHz). */
    Tick fpgaCyclePs = 5333;

    // TX-path pipeline stages, in FPGA cycles (Fig. 14 numbering).
    unsigned flitsToParallelCycles = 10; ///< Stage 2: to-flit buffering.
    unsigned arbiterCycles = 4;          ///< Stage 3: 2-9 in hardware.
    unsigned seqFlowCrcCycles = 10;      ///< Stages 4-6.
    unsigned serdesConvertCycles = 10;   ///< Stages 7-8 conversion.

    /** Board trace + SerDes flight + cube-side deserialize (TX). */
    Tick txPropagation = nsToTicks(85.0);
    /** Cube-to-FPGA flight + transceiver latency (RX). */
    Tick rxPropagation = nsToTicks(40.0);

    /** RX fixed pipeline (deserialize, verify CRC/seq, route back),
     *  in FPGA cycles. */
    unsigned rxFixedCycles = 30;
    /** Additional RX latency per response flit (reassembly). */
    Tick rxPerFlit = nsToTicks(5.0);

    /** Effective FPGA->HMC packet-byte rate per link. */
    double txBytesPerSecondPerLink = 7.5e9;
    /** Effective HMC->FPGA packet-byte rate per link. */
    double rxBytesPerSecondPerLink = 10.5e9;
    /** Per-packet link-layer cost on the TX wire. */
    Bytes txPerPacketOverheadBytes = 8;
    /** Per-packet deserialize/verify cost on the RX side. */
    Bytes rxPerPacketOverheadBytes = 24;

    /** Number of external links (AC-510: two half-width @15 Gbps). */
    unsigned numLinks = 2;
    /** Lane bit error rate (0 = clean lanes; >0 exercises the
     *  link-level CRC + retry-buffer machinery). */
    double bitErrorRate = 0.0;
    /**
     * Cube input-buffer size in flits for token-based flow control
     * (per link). 0 = unlimited (the calibrated default: the 9x64
     * tag pools bound outstanding traffic well below any realistic
     * buffer). Non-zero engages the request flow-control unit's stop
     * signal (Fig. 14 stage 5): requests wait in the controller when
     * the cube has no buffer space.
     */
    unsigned inputBufferFlits = 0;

    /** Fixed TX pipeline latency in ticks (stages 2-8). */
    Tick
    txFixedLatency() const
    {
        return fpgaCyclePs * (flitsToParallelCycles + arbiterCycles +
                              seqFlowCrcCycles + serdesConvertCycles);
    }

    /** Fixed RX pipeline latency in ticks. */
    Tick
    rxFixedLatency() const
    {
        return fpgaCyclePs * rxFixedCycles;
    }

    /** LinkConfig for the TX direction of one link. */
    LinkConfig
    txLinkConfig() const
    {
        LinkConfig cfg;
        cfg.numLinks = numLinks;
        cfg.lanesPerLink = 8;
        cfg.gbpsPerLane = 15.0;
        cfg.protocolEfficiency =
            txBytesPerSecondPerLink / cfg.rawLinkBytesPerSecond();
        cfg.perPacketOverheadBytes = txPerPacketOverheadBytes;
        cfg.bitErrorRate = bitErrorRate;
        return cfg;
    }

    /** LinkConfig for the RX direction of one link. */
    LinkConfig
    rxLinkConfig() const
    {
        LinkConfig cfg;
        cfg.numLinks = numLinks;
        cfg.lanesPerLink = 8;
        cfg.gbpsPerLane = 15.0;
        cfg.protocolEfficiency =
            rxBytesPerSecondPerLink / cfg.rawLinkBytesPerSecond();
        cfg.perPacketOverheadBytes = rxPerPacketOverheadBytes;
        cfg.bitErrorRate = bitErrorRate;
        return cfg;
    }
};

} // namespace hmcsim

#endif // HMCSIM_HOST_CALIBRATION_HH
