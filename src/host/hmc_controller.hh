/**
 * @file
 * FPGA-side HMC controller: the TX and RX paths of Fig. 14.
 *
 * The controller accepts requests from GUPS ports, runs them through
 * the fixed TX pipeline (flit conversion, arbitration, sequence
 * numbers, flow control, CRC, SerDes conversion), serializes them on
 * the per-link TX wire, hands them to the cube, and symmetrically
 * returns responses through the RX path.
 */

#ifndef HMCSIM_HOST_HMC_CONTROLLER_HH
#define HMCSIM_HOST_HMC_CONTROLLER_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hmc/device.hh"
#include "link/flow_control.hh"
#include "host/calibration.hh"
#include "link/link.hh"
#include "protocol/packet.hh"
#include "protocol/packet_pool.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace hmcsim
{

class SnapshotFixup;

/** One named stage of the TX/RX latency deconstruction (Fig. 14). */
struct StageLatency
{
    std::string name;
    unsigned cycles; ///< FPGA cycles (0 when not cycle-quantized).
    double ns;       ///< Latency contribution in nanoseconds.
};

/** Controller statistics. */
struct ControllerStats
{
    std::uint64_t requestsSubmitted = 0;
    std::uint64_t responsesDelivered = 0;
    Bytes txWireBytes = 0;
    Bytes rxWireBytes = 0;
    /** Requests parked by the flow-control stop signal. */
    std::uint64_t flowControlStalls = 0;
};

/** The controller. */
class HmcController
{
  public:
    /** Response sink: routes a completed packet to its port. */
    using DeliverFn = std::function<void(const Packet &)>;

    HmcController(const ControllerCalibration &cal, EventQueue &queue,
                  HmcDevice &device, DeliverFn deliver);

    /** Submit a request from a GUPS port (starts the TX pipeline). */
    void submitRequest(Packet &&pkt);

    /**
     * Per-stage latency breakdown of the TX path for a request of
     * @p request_bytes (Fig. 14 reproduction; serialization uses the
     * effective link rate).
     */
    std::vector<StageLatency> txStageBreakdown(Bytes request_bytes) const;

    /** Per-stage latency breakdown of the RX path for a response. */
    std::vector<StageLatency> rxStageBreakdown(Bytes response_bytes) const;

    /** Minimum infrastructure round-trip contribution for a
     *  transaction (TX + RX, no queuing): the paper's ~547 ns. */
    double infrastructureLatencyNs(Bytes request_bytes,
                                   Bytes response_bytes) const;

    const ControllerStats &stats() const { return _stats; }
    const ControllerCalibration &calibration() const { return cal; }

    /** Total packets that needed a link-level retry (both paths). */
    std::uint64_t linkRetries() const;

    /** Register controller counters under @p path. */
    void registerStats(StatRegistry &registry, const StatPath &path) const;

    /**
     * Register the controller's model invariants under @p name:
     * per-link flow-control token conservation (available + in-flight
     * == capacity) and stop-signal consistency (a parked request
     * implies insufficient tokens for it). The controller must
     * outlive the registry.
     */
    void registerCheckers(CheckerRegistry &registry,
                          const std::string &name) const;

    /** The controller's in-flight packet pool (one per simulator;
     *  exposed for the perf harness's allocation accounting). */
    const PacketPool &packetPool() const { return pool; }

    // Main-path event captures, named (instead of inline lambdas) so
    // simulator fork can recognize pending events by invoke thunk and
    // relocate their pointers into the forked world (sim/snapshot.hh).
    // All trivially copyable; each pointer is rewritten by relocate().

    /** TX wire arrival: the cube decodes and services the request. */
    struct CubeArriveEvent // lint:snapshot-state
    {
        HmcController *self; // lint:allow(snapshot-safe, relocated through the fork fixup map)
        Packet *pkt;         // lint:allow(snapshot-safe, pooled slot translated block-relative)
        void operator()();
        void relocate(const SnapshotFixup &fixup);
    };

    /** Response leaves the cube onto the RX wire. */
    struct ResponseReadyEvent // lint:snapshot-state
    {
        HmcController *self; // lint:allow(snapshot-safe, relocated through the fork fixup map)
        Packet *pkt;         // lint:allow(snapshot-safe, pooled slot translated block-relative)
        unsigned rxLink;
        void operator()();
        void relocate(const SnapshotFixup &fixup);
    };

    /** Response fully reassembled at the FPGA: tokens return, parked
     *  requests release, the port gets its completion. */
    struct DeliveredEvent // lint:snapshot-state
    {
        HmcController *self; // lint:allow(snapshot-safe, relocated through the fork fixup map)
        Packet *pkt;         // lint:allow(snapshot-safe, pooled slot translated block-relative)
        void operator()();
        void relocate(const SnapshotFixup &fixup);
    };

    /**
     * Become a state copy of @p src for simulator fork: clone the
     * packet pool (registering its block extents in @p fixup so event
     * captures can be translated), then copy link serializers, RNG
     * streams, token counts, parked queues, and counters. Must run on
     * a freshly built controller with identical calibration; read-only
     * on @p src (concurrent forks of one warm source are safe).
     */
    void restoreFrom(const HmcController &src, SnapshotFixup &fixup);

  private:
    /**
     * Start the TX pipeline for a pooled request (tokens already
     * held). The pointer stays live -- threaded through the event
     * captures of the TX wire, the cube visit, and the RX path --
     * until the response is delivered, when the slot returns to the
     * pool.
     */
    void startTransmit(Packet *pkt);

    ControllerCalibration cal;
    /** Hoisted per-packet pipeline constants: the calibration's fixed
     *  TX/RX latencies are cycle-count x cycle-time products that the
     *  hot handlers would otherwise recompute per packet. */
    Tick txFixedLat = 0;
    Tick rxFixedLat = 0;
    Tick rxPerFlitTicks = 0;
    EventQueue &queue;
    HmcDevice &device;
    DeliverFn deliver;
    /** Pool backing every in-flight request (docs/performance.md). */
    PacketPool pool;
    std::vector<std::unique_ptr<LinkDirection>> txLinks;
    std::vector<std::unique_ptr<LinkDirection>> rxLinks;
    /** Per-link cube input-buffer tokens (engaged when configured). */
    std::vector<TokenFlowControl> tokens;
    /** Requests parked by the stop signal, per link (pooled slots,
     *  still owned by this controller). */
    std::vector<std::deque<Packet *>> parked;
    /** Independent count of flits holding tokens, per link (audited
     *  against `tokens` by the conservation checker). */
    std::vector<std::uint64_t> inFlightFlits;
    ControllerStats _stats;
};

} // namespace hmcsim

#endif // HMCSIM_HOST_HMC_CONTROLLER_HH
