/**
 * @file
 * Temperature-coupled co-simulation.
 *
 * The paper's thermal methodology runs each workload for 200 wall
 * seconds and reads the settled temperature (Sec. III-A). This module
 * reproduces that loop closed: performance simulation slices estimate
 * sustained traffic, the power model turns traffic into watts, the
 * transient RC model advances the temperature, and the temperature
 * feeds back into the device (refresh rate doubles above 85 C;
 * crossing the workload's reliability bound shuts the cube down,
 * Sec. IV-C).
 */

#ifndef HMCSIM_HOST_COSIM_HH
#define HMCSIM_HOST_COSIM_HH

#include <vector>

#include "host/experiment.hh"
#include "power/power_model.hh"

namespace hmcsim
{

/** Co-simulation configuration. */
struct CoSimConfig
{
    /** Workload + platform (the measurement windows reuse this). */
    ExperimentConfig experiment;
    /** Cooling environment. */
    CoolingConfig cooling = coolingConfig(1);
    PowerParams power;
    ThermalParams thermal;
    /** Wall-clock seconds advanced per step. */
    double wallStepSeconds = 5.0;
    /** Total wall-clock duration (the paper runs 200 s). */
    double wallDurationSeconds = 200.0;
    /** Simulated window per step used to estimate sustained rates. */
    Tick sliceSimTime = 200 * tickUs;
    /** Couple temperature back into the refresh engine. */
    bool refreshFeedback = true;
    /** Stop at the reliability bound (cube shutdown). */
    bool stopOnFailure = true;
};

/** One sample of the co-simulated time series. */
struct CoSimSample
{
    double timeSeconds;
    double temperatureC;
    double rawGBps;
    double hmcDynamicW;
    double systemW;
    bool hotRefresh; ///< Refresh rate doubled this step.
};

/** Co-simulation outcome. */
struct CoSimResult
{
    std::vector<CoSimSample> series;
    bool failed = false;
    /** Wall time at which the reliability bound was crossed. */
    double failureTimeSeconds = -1.0;
    /** Final (or at-failure) temperature. */
    double finalTemperatureC = 0.0;
};

/** Run the coupled loop. */
CoSimResult runCoSimulation(const CoSimConfig &cfg);

} // namespace hmcsim

#endif // HMCSIM_HOST_COSIM_HH
