// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
#include "host/hmc_controller.hh"

#include <memory>
#include <sstream>
#include <utility>

#include "protocol/fields.hh"
#include "sim/check.hh"
#include "sim/snapshot.hh"

namespace hmcsim
{

HmcController::HmcController(const ControllerCalibration &cal,
                             EventQueue &queue, HmcDevice &device,
                             DeliverFn deliver)
    : cal(cal),
      txFixedLat(cal.txFixedLatency()),
      rxFixedLat(cal.rxFixedLatency()),
      rxPerFlitTicks(cal.rxPerFlit),
      queue(queue), device(device), deliver(std::move(deliver))
{
    const LinkConfig tx_cfg = cal.txLinkConfig();
    const LinkConfig rx_cfg = cal.rxLinkConfig();
    for (unsigned i = 0; i < cal.numLinks; ++i) {
        txLinks.push_back(std::make_unique<LinkDirection>(
            tx_cfg, cal.txPropagation, 0x70000 + i));
        rxLinks.push_back(std::make_unique<LinkDirection>(
            rx_cfg, cal.rxPropagation, 0xB0000 + i));
        if (cal.inputBufferFlits > 0) {
            tokens.emplace_back(cal.inputBufferFlits);
            parked.emplace_back();
            inFlightFlits.push_back(0);
        }
    }
}

void
HmcController::submitRequest(Packet &&pkt)
{
    ++_stats.requestsSubmitted;
    // The request moves into a pooled slot here and stays in it for
    // its whole lifetime; event captures below carry only the pointer
    // (the Event inline budget forbids by-value packets).
    Packet *req = pool.acquire();
    *req = pkt;
    const unsigned link =
        static_cast<unsigned>(req->link % txLinks.size());
    req->link = static_cast<std::uint8_t>(link);

    // The Add-Seq# / Add-CRC stages of Fig. 14: stamp the on-the-wire
    // header and the tail CRC the cube will verify.
    req->headerBits = encodeRequestHeader(makeRequestHeader(*req));
    req->tailCrc = packetCrc(*req, req->headerBits);

    // Request flow control (Fig. 14 stage 5): without cube buffer
    // tokens, the request waits in the controller; the stop signal is
    // implicit in the parked queue.
    if (!tokens.empty()) {
        if (!tokens[link].consume(req->reqFlits())) {
            ++_stats.flowControlStalls;
            parked[link].push_back(req);
            return;
        }
        inFlightFlits[link] += req->reqFlits();
    }

    startTransmit(req);
}

void
HmcController::startTransmit(Packet *pkt)
{
    const unsigned link = pkt->link;

    // Fixed TX pipeline, then serialization on the shared wire.
    const Tick tx_start = queue.now() + txFixedLat;
    pkt->tLinkTx = tx_start;
    _stats.txWireBytes += txLinks[link]->wireBytes(pkt->reqBytes());
    const Tick arrive = txLinks[link]->transmit(tx_start, pkt->reqBytes());

    queue.schedule(arrive, CubeArriveEvent{this, pkt});
}

void
HmcController::CubeArriveEvent::operator()()
{
    // The cube decodes, routes, and services the request; it tells
    // us when the response starts back on the RX wire.
    HmcController &c = *self;
    const Tick resp_ready = c.device.handleRequest(*pkt, c.queue.now());
    const unsigned rx_link =
        static_cast<unsigned>(pkt->link % c.rxLinks.size());
    c.queue.schedule(resp_ready, ResponseReadyEvent{self, pkt, rx_link});
}

void
HmcController::ResponseReadyEvent::operator()()
{
    HmcController &c = *self;
    c._stats.rxWireBytes += c.rxLinks[rxLink]->wireBytes(pkt->respBytes());
    const Tick at_fpga =
        c.rxLinks[rxLink]->transmit(c.queue.now(), pkt->respBytes());
    const Tick delivered = at_fpga + c.rxFixedLat +
                           c.rxPerFlitTicks * pkt->respFlits();
    c.queue.schedule(delivered, DeliveredEvent{self, pkt});
}

void
HmcController::DeliveredEvent::operator()()
{
    HmcController &c = *self;
    pkt->tResponse = c.queue.now();
    ++c._stats.responsesDelivered;

    // The response's RTC field returns the request's input-buffer
    // tokens; that may release parked requests (deassert the stop
    // signal).
    if (!c.tokens.empty()) {
        const unsigned rx = pkt->link;
        HMCSIM_DCHECK(c.inFlightFlits[rx] >= pkt->reqFlits(),
                      "returning more flits than in flight "
                      "on link %u", rx);
        c.inFlightFlits[rx] -= pkt->reqFlits();
        c.tokens[rx].returnTokens(pkt->reqFlits());
        while (!c.parked[rx].empty() &&
               c.tokens[rx].consume(c.parked[rx].front()->reqFlits())) {
            Packet *next = c.parked[rx].front();
            c.parked[rx].pop_front();
            c.inFlightFlits[rx] += next->reqFlits();
            c.startTransmit(next);
        }
    }
    c.deliver(*pkt);
    c.pool.release(pkt);
}

void
HmcController::CubeArriveEvent::relocate(const SnapshotFixup &fixup)
{
    self = fixup.translate(self);
    pkt = fixup.translate(pkt);
}

void
HmcController::ResponseReadyEvent::relocate(const SnapshotFixup &fixup)
{
    self = fixup.translate(self);
    pkt = fixup.translate(pkt);
}

void
HmcController::DeliveredEvent::relocate(const SnapshotFixup &fixup)
{
    self = fixup.translate(self);
    pkt = fixup.translate(pkt);
}

void
HmcController::restoreFrom(const HmcController &src, SnapshotFixup &fixup)
{
    fixup.mapObject(&src, this);
    pool.cloneFrom(src.pool, fixup);
    for (std::size_t i = 0; i < txLinks.size(); ++i) {
        *txLinks[i] = *src.txLinks[i];
        *rxLinks[i] = *src.rxLinks[i];
    }
    tokens = src.tokens;
    inFlightFlits = src.inFlightFlits;
    for (std::size_t link = 0; link < src.parked.size(); ++link) {
        parked[link].clear();
        for (Packet *p : src.parked[link])
            parked[link].push_back(fixup.translate(p));
    }
    _stats = src._stats;
}

std::uint64_t
HmcController::linkRetries() const
{
    std::uint64_t total = 0;
    for (const auto &link : txLinks)
        total += link->retries();
    for (const auto &link : rxLinks)
        total += link->retries();
    return total;
}

void
HmcController::registerCheckers(CheckerRegistry &registry,
                                const std::string &name) const
{
    // Packet-pool conservation: every slot checked out corresponds to
    // one submitted-but-undelivered request (in flight or parked). A
    // drift is a leaked or double-released slot -- exactly the
    // lifetime bug class pools attract.
    registry.addLambda(name + ".packet_pool",
                       [this](Tick) -> std::string {
        const std::uint64_t outstanding =
            _stats.requestsSubmitted - _stats.responsesDelivered;
        if (pool.live() == outstanding)
            return {};
        std::ostringstream out;
        out << pool.live() << " pooled packets live but "
            << outstanding << " requests outstanding";
        return out.str();
    });
    for (std::size_t link = 0; link < tokens.size(); ++link) {
        const std::string base =
            name + ".link" + std::to_string(link);
        registry.add(std::make_unique<TokenConservationChecker>(
            base + ".tokens", tokens[link],
            [this, link] { return inFlightFlits[link]; }));
        // Stop-signal consistency: after an event drains, a parked
        // request means the head of the parked queue does not fit in
        // the remaining tokens (otherwise the release loop lost it).
        registry.addLambda(base + ".stop_signal",
                           [this, link](Tick) -> std::string {
            if (parked[link].empty() ||
                !tokens[link].canSend(parked[link].front()->reqFlits()))
                return {};
            std::ostringstream out;
            out << parked[link].size()
                << " requests parked although " << tokens[link].tokens()
                << " tokens cover the head request's "
                << parked[link].front()->reqFlits() << " flits";
            return out.str();
        });
    }
}

void
HmcController::registerStats(StatRegistry &registry,
                             const StatPath &path) const
{
    registry.addValue((path / "requests_submitted").str(),
                      "requests entering the TX pipeline",
                      &_stats.requestsSubmitted);
    registry.addValue((path / "responses_delivered").str(),
                      "responses handed back to ports",
                      &_stats.responsesDelivered);
    registry.addValue((path / "tx_wire_bytes").str(),
                      "bytes serialized toward the cube",
                      &_stats.txWireBytes);
    registry.addValue((path / "rx_wire_bytes").str(),
                      "bytes deserialized from the cube",
                      &_stats.rxWireBytes);
    registry.add((path / "link_retries").str(),
                 "packets needing link-level retry",
                 [this] { return static_cast<double>(linkRetries()); });
    registry.addValue((path / "flow_control_stalls").str(),
                      "requests parked by the stop signal",
                      &_stats.flowControlStalls);
}

std::vector<StageLatency>
HmcController::txStageBreakdown(Bytes request_bytes) const
{
    const double cyc_ns = ticksToNs(cal.fpgaCyclePs);
    const double wire_ns =
        (static_cast<double>(request_bytes) +
         static_cast<double>(cal.txPerPacketOverheadBytes)) /
        cal.txBytesPerSecondPerLink * 1e9;

    std::vector<StageLatency> stages;
    stages.push_back({"FlitsToParallel (to-flit buffering)",
                      cal.flitsToParallelCycles,
                      cal.flitsToParallelCycles * cyc_ns});
    stages.push_back({"5:1 round-robin arbiter", cal.arbiterCycles,
                      cal.arbiterCycles * cyc_ns});
    stages.push_back({"Add-Seq# / flow control / Add-CRC",
                      cal.seqFlowCrcCycles, cal.seqFlowCrcCycles * cyc_ns});
    stages.push_back({"Convert to SerDes protocol",
                      cal.serdesConvertCycles,
                      cal.serdesConvertCycles * cyc_ns});
    stages.push_back({"Serialization + wire occupancy", 0, wire_ns});
    stages.push_back({"Propagation + cube-side deserialize", 0,
                      ticksToNs(cal.txPropagation)});
    return stages;
}

std::vector<StageLatency>
HmcController::rxStageBreakdown(Bytes response_bytes) const
{
    const double cyc_ns = ticksToNs(cal.fpgaCyclePs);
    const double wire_ns =
        (static_cast<double>(response_bytes) +
         static_cast<double>(cal.rxPerPacketOverheadBytes)) /
        cal.rxBytesPerSecondPerLink * 1e9;
    const unsigned flits =
        static_cast<unsigned>(response_bytes / flitBytes);

    std::vector<StageLatency> stages;
    stages.push_back({"Cube-side serialize + propagation", 0,
                      ticksToNs(cal.rxPropagation)});
    stages.push_back({"Wire occupancy", 0, wire_ns});
    stages.push_back({"Deserialize / verify CRC + Seq# / route",
                      cal.rxFixedCycles, cal.rxFixedCycles * cyc_ns});
    stages.push_back({"Flit reassembly", 0,
                      ticksToNs(cal.rxPerFlit) * flits});
    return stages;
}

double
HmcController::infrastructureLatencyNs(Bytes request_bytes,
                                       Bytes response_bytes) const
{
    double total = 0.0;
    for (const auto &s : txStageBreakdown(request_bytes))
        total += s.ns;
    for (const auto &s : rxStageBreakdown(response_bytes))
        total += s.ns;
    return total;
}

} // namespace hmcsim
