#include "host/cosim.hh"

#include "thermal/thermal_model.hh"

namespace hmcsim
{

CoSimResult
runCoSimulation(const CoSimConfig &cfg)
{
    // Build one persistent system so device state (refresh rate,
    // shutdown) carries across steps.
    Ac510Module module(makeSystemConfig(cfg.experiment));

    const ThermalModel thermal(cfg.cooling, cfg.thermal);
    const PowerModel power(cfg.power);
    const double limit =
        ThermalModel::temperatureLimit(cfg.experiment.mix);

    CoSimResult result;
    double temperature = cfg.cooling.idleTemperatureC;
    double wall = 0.0;
    Tick sim_now = 0;

    module.start();
    // Warm the pipeline before the first measured slice.
    sim_now += cfg.experiment.warmup;
    module.runUntil(sim_now);

    while (wall < cfg.wallDurationSeconds) {
        // Temperature feedback into the DRAM refresh engine.
        const bool hot =
            temperature > HmcDevice::hotRefreshThresholdC;
        if (cfg.refreshFeedback)
            module.device().applyTemperature(temperature);

        // Measure a slice of sustained traffic at this temperature.
        module.resetPortStats();
        sim_now += cfg.sliceSimTime;
        module.runUntil(sim_now);
        const GupsPortStats agg = module.aggregateStats();
        const double seconds = ticksToSeconds(cfg.sliceSimTime);

        TrafficSummary traffic;
        traffic.rawGBps =
            toGBps(static_cast<double>(agg.rawBytes) / seconds);
        traffic.readPayloadGBps = toGBps(
            static_cast<double>(agg.readPayloadBytes) / seconds);
        traffic.writePayloadGBps = toGBps(
            static_cast<double>(agg.writePayloadBytes) / seconds);
        traffic.readMrps =
            static_cast<double>(agg.readsCompleted) / seconds / 1e6;
        traffic.writeMrps =
            static_cast<double>(agg.writesCompleted) / seconds / 1e6;

        const double dynamic = power.hmcDynamicPower(traffic);

        // Advance the wall clock through the RC model.
        temperature =
            thermal.step(temperature, dynamic, cfg.wallStepSeconds);
        wall += cfg.wallStepSeconds;

        CoSimSample sample;
        sample.timeSeconds = wall;
        sample.temperatureC = temperature;
        sample.rawGBps = traffic.rawGBps;
        sample.hmcDynamicW = dynamic;
        sample.systemW = cfg.power.systemIdleW + cfg.power.fpgaActiveW +
                         dynamic + thermal.leakagePower(temperature);
        sample.hotRefresh = hot;
        result.series.push_back(sample);

        if (temperature > limit) {
            result.failed = true;
            result.failureTimeSeconds = wall;
            // The cube shuts down: subsequent responses are flagged
            // and no further DRAM work happens (Sec. IV-C).
            module.device().setThermalShutdown(true);
            if (cfg.stopOnFailure)
                break;
        }
    }

    result.finalTemperatureC = temperature;
    module.stop();
    return result;
}

} // namespace hmcsim
