#include "thermal/cooling.hh"

#include "sim/logging.hh"

namespace hmcsim
{

const std::array<CoolingConfig, 4> &
coolingConfigs()
{
    // Idle temperatures, fan settings, and cooling powers are the
    // paper's measured/computed values (Table III, Sec. IV-C). The
    // thermal resistances are our model fit: they grow as airflow
    // weakens and are tuned so the Fig. 9 / Fig. 11 temperature-vs-
    // bandwidth slopes and the observed failure set are reproduced.
    static const std::array<CoolingConfig, 4> configs = {{
        {"Cfg1", 12.0, 0.36, 45.0, 43.1, 19.32, 1.00},
        {"Cfg2", 10.0, 0.29, 90.0, 51.7, 15.90, 1.60},
        {"Cfg3", 6.5, 0.14, 90.0, 62.3, 13.90, 1.70},
        {"Cfg4", 6.0, 0.13, 135.0, 71.6, 10.78, 2.20},
    }};
    return configs;
}

const CoolingConfig &
coolingConfig(unsigned index_1_based)
{
    if (index_1_based < 1 || index_1_based > coolingConfigs().size())
        fatal("cooling config index must be 1..4 (got %u)", index_1_based);
    return coolingConfigs()[index_1_based - 1];
}

} // namespace hmcsim
