/**
 * @file
 * Lumped-RC thermal model of the HMC package under a cooling config.
 *
 * The paper observes (Sec. IV-C, Figs. 9 and 11a) that HMC heatsink
 * temperature is, to first order, linear in sustained bandwidth for a
 * fixed cooling environment, that the slope steepens as cooling
 * weakens, and that write-heavy traffic is the most temperature-
 * sensitive. We model the package as a single thermal node:
 *
 *     C dT/dt = P_hmc(T) - (T - T_idle) / R_th
 *
 * where R_th comes from the cooling configuration and P_hmc includes a
 * leakage term that grows with temperature (the power-temperature
 * coupling visible in Fig. 10: weaker cooling costs more watts at the
 * same bandwidth). Steady state is the fixed point of the coupled
 * power/thermal equations.
 */

#ifndef HMCSIM_THERMAL_THERMAL_MODEL_HH
#define HMCSIM_THERMAL_THERMAL_MODEL_HH

#include "protocol/packet.hh"
#include "sim/types.hh"
#include "thermal/cooling.hh"

namespace hmcsim
{

/** Model constants shared by the thermal and power models. */
struct ThermalParams
{
    /** Package thermal capacitance (J/K); sets the transient time
     *  constant (~tens of seconds, so the paper's 200 s settle time
     *  is comfortably converged). */
    double capacitance = 20.0;
    /**
     * Leakage power slope above the cooling configuration's idle
     * temperature (W/K). Anchoring at the idle point makes the model
     * reproduce Table III exactly at zero load while still coupling
     * power and temperature under load (Fig. 10).
     */
    double leakagePerDegC = 0.055;
    /**
     * Global reference for *reporting* leakage in the wall-power
     * accounting (Fig. 10). The feedback term above is anchored at
     * each configuration's idle temperature (whose measured value
     * already embeds that configuration's idle leakage); the wall
     * meter, however, sees leakage grow with absolute temperature, so
     * the power model reports k * (T - globalLeakageRefC).
     */
    double globalLeakageRefC = 43.0;
};

/** Outcome of a thermal evaluation. */
struct ThermalResult
{
    /** Steady-state heatsink surface temperature (deg C). */
    double temperatureC;
    /** HMC leakage power at that temperature (W). */
    double leakagePowerW;
    /** True when the workload's reliability bound is exceeded and the
     *  cube shuts down (stored data is lost). */
    bool failure;
    /** The bound that applied (85 deg C reads, 75 deg C writes). */
    double limitC;
};

/** Single-node RC thermal model. */
class ThermalModel
{
  public:
    ThermalModel(const CoolingConfig &cooling,
                 const ThermalParams &params = ThermalParams{});

    /**
     * Steady-state temperature for a workload dissipating
     * @p dynamic_power_w inside the cube.
     *
     * Solves T = T_idle + R_th (P_dyn + P_leak(T)) in closed form.
     *
     * @param dynamic_power_w Bandwidth-driven HMC power (W).
     * @param mix Request mix, selecting the reliability bound.
     */
    ThermalResult steadyState(double dynamic_power_w,
                              RequestMix mix) const;

    /**
     * Advance the transient model by @p dt_seconds with a constant
     * dynamic power, returning the new temperature. Explicit Euler
     * with internal sub-stepping for stability.
     */
    double step(double temperature_c, double dynamic_power_w,
                double dt_seconds) const;

    /** Leakage power at a given temperature. */
    double leakagePower(double temperature_c) const;

    /** Reliability bound for a request mix. */
    static double temperatureLimit(RequestMix mix);

    const CoolingConfig &cooling() const { return _cooling; }
    const ThermalParams &params() const { return _params; }

  private:
    CoolingConfig _cooling;
    ThermalParams _params;
};

} // namespace hmcsim

#endif // HMCSIM_THERMAL_THERMAL_MODEL_HH
