/**
 * @file
 * Cooling environment configurations (Table III of the paper).
 *
 * The paper tunes two backplane fans with a DC power supply and places
 * a 15 W commodity fan at 45/90/135 cm to create four thermal
 * environments. Each environment is summarized here by its measured
 * idle HMC heatsink temperature, its computed cooling power, and the
 * effective HMC thermal resistance our lumped model attributes to it.
 */

#ifndef HMCSIM_THERMAL_COOLING_HH
#define HMCSIM_THERMAL_COOLING_HH

#include <array>
#include <string>

#include "sim/types.hh"

namespace hmcsim
{

/** One row of Table III plus derived model parameters. */
struct CoolingConfig
{
    std::string name;
    /** Backplane-fan supply voltage (V). */
    double fanVoltage;
    /** Backplane-fan supply current (A). */
    double fanCurrent;
    /** External 15 W fan distance (cm). */
    double fanDistanceCm;
    /** Measured average HMC idle heatsink temperature (deg C). */
    double idleTemperatureC;
    /**
     * Total cooling power of the configuration (W): backplane fans +
     * distance-derated external fan, as computed in Sec. IV-C
     * (19.32 / 15.9 / 13.9 / 10.78 W for Cfg1..Cfg4).
     */
    double coolingPowerW;
    /**
     * Lumped heatsink-to-air thermal resistance for HMC-generated
     * power (deg C per W). Weaker airflow -> higher resistance.
     */
    double thermalResistance;
};

/** Table III: Cfg1 (strongest cooling) .. Cfg4 (weakest). */
const std::array<CoolingConfig, 4> &coolingConfigs();

/** Access one configuration by its paper name ("Cfg1".."Cfg4"). */
const CoolingConfig &coolingConfig(unsigned index_1_based);

/**
 * Reliable operating bounds (Sec. IV-C): DRAM is assumed reliable to
 * 85 deg C, but the paper measures failures near 75 deg C for
 * workloads with significant write content.
 */
constexpr double readTemperatureLimitC = 85.0;
constexpr double writeTemperatureLimitC = 75.0;

/** The heatsink surface reads 5-10 deg C below the junction. */
constexpr double heatsinkToJunctionOffsetC = 7.5;

} // namespace hmcsim

#endif // HMCSIM_THERMAL_COOLING_HH
