#include "thermal/thermal_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace hmcsim
{

ThermalModel::ThermalModel(const CoolingConfig &cooling,
                           const ThermalParams &params)
    : _cooling(cooling), _params(params)
{
    // The closed-form steady state requires the leakage feedback loop
    // gain R_th * k_leak to stay below one (thermal runaway otherwise).
    if (_cooling.thermalResistance * _params.leakagePerDegC >= 1.0)
        fatal("thermal model unstable: R_th * k_leak >= 1");
}

double
ThermalModel::leakagePower(double temperature_c) const
{
    return std::max(0.0, _params.leakagePerDegC *
                             (temperature_c -
                              _cooling.idleTemperatureC));
}

double
ThermalModel::temperatureLimit(RequestMix mix)
{
    return mix == RequestMix::ReadOnly ? readTemperatureLimitC
                                       : writeTemperatureLimitC;
}

ThermalResult
ThermalModel::steadyState(double dynamic_power_w, RequestMix mix) const
{
    const double r = _cooling.thermalResistance;
    const double k = _params.leakagePerDegC;
    const double t0 = _cooling.idleTemperatureC;

    // T = T0 + R (P + k (T - T0))  =>  T = T0 + R P / (1 - R k),
    // valid while T >= T0; otherwise leakage clamps to zero.
    double t = t0 + r * dynamic_power_w / (1.0 - r * k);
    if (t < t0)
        t = t0 + r * dynamic_power_w;

    ThermalResult res;
    res.temperatureC = t;
    res.leakagePowerW = leakagePower(t);
    res.limitC = temperatureLimit(mix);
    res.failure = t > res.limitC;
    return res;
}

double
ThermalModel::step(double temperature_c, double dynamic_power_w,
                   double dt_seconds) const
{
    const double r = _cooling.thermalResistance;
    const double c = _params.capacitance;
    // Sub-step at tau/20 for explicit-Euler stability.
    const double tau = r * c;
    const double h = std::min(dt_seconds, tau / 20.0);
    double t = temperature_c;
    double remaining = dt_seconds;
    while (remaining > 0.0) {
        const double dt = std::min(h, remaining);
        const double p = dynamic_power_w + leakagePower(t);
        const double dTdt = (p - (t - _cooling.idleTemperatureC) / r) / c;
        t += dTdt * dt;
        remaining -= dt;
    }
    return t;
}

} // namespace hmcsim
