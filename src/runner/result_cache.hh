/**
 * @file
 * Content-addressed cache of measured experiment results.
 *
 * Keys are configDigest() values: a result is reusable exactly when
 * the full configuration (pattern, mix, size, mode, ports, windows,
 * seed, device, calibration) hashes identically. The cache keeps a
 * bounded in-memory LRU map and, below it, an optional persistence
 * tier: either the classic flat directory of <digest>.result text
 * files, or any ResultStorage implementation (the distributed shared
 * store in dist/store.hh plugs in here), so a re-run of a bench suite
 * or sweep skips already-measured points across processes.
 *
 * The on-disk format round-trips doubles as C99 hex floats (%a), so a
 * cache hit is bit-identical to the original measurement -- the
 * determinism contract (serial == parallel == cached) survives
 * persistence. Writes go to a temporary file and land via atomic
 * rename, so a concurrent or crashed writer can never leave a
 * half-written entry behind; a truncated or otherwise malformed entry
 * is skipped as a clean miss and counted, never trusted.
 *
 * Thread safety: all public members are safe to call concurrently;
 * the sweep runner's workers share one instance. Persistence I/O runs
 * outside the cache lock, so a slow storage tier (NFS, a claim wait)
 * stalls only the requesting thread.
 */

#ifndef HMCSIM_RUNNER_RESULT_CACHE_HH
#define HMCSIM_RUNNER_RESULT_CACHE_HH

#include <cstdint>
#include <iosfwd>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "hmcsim/annotations.hh"
#include "host/experiment.hh"

namespace hmcsim
{

/** What the cache stores per configuration digest. */
struct CachedResult
{
    MeasurementResult result;
    /** StatRegistry::digest() of the run that produced the result. */
    std::uint64_t statDigest = 0;
};

/**
 * Serialize every CachedResult field (no version header) in the
 * canonical key-value text form shared by every persisted result
 * format; the caller prepends its own "hmcsim-result vN" header line.
 * Doubles round-trip bit-exactly (%a hexfloat).
 */
std::string serializeResultFields(const CachedResult &value);

/** Parse serializeResultFields() output from @p in (the header line
 *  already consumed); false on malformed input. */
bool parseResultFields(std::istream &in, CachedResult &out);

/**
 * A persistence tier below ResultCache's in-memory LRU. load() and
 * save() may be called concurrently from many threads; a load of a
 * key that was never saved returns nullopt. Implementations must keep
 * the bit-exactness contract: load() after save() reproduces the
 * CachedResult exactly.
 */
class ResultStorage
{
  public:
    virtual ~ResultStorage() = default;

    virtual std::optional<CachedResult> load(std::uint64_t key) = 0;
    virtual void save(std::uint64_t key, const CachedResult &value) = 0;
};

class ResultCache
{
  public:
    /**
     * @param dir Persistence directory; empty = in-memory only. The
     *        directory is created on first store if missing.
     * @param max_entries In-memory LRU capacity (disk files are never
     *        evicted).
     */
    explicit ResultCache(std::string dir = "",
                         std::size_t max_entries = 4096);

    /**
     * Back the cache with an external storage tier instead of the
     * flat directory (e.g. dist/store.hh's SharedResultStore).
     * @p storage must outlive the cache.
     */
    explicit ResultCache(ResultStorage &storage,
                         std::size_t max_entries = 4096);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** Find a result by config digest (memory first, then storage). */
    std::optional<CachedResult> lookup(std::uint64_t key);

    /** Store a result under @p key (memory + persistence tier). */
    void store(std::uint64_t key, const CachedResult &value);

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    /** Malformed/truncated disk entries skipped as clean misses. */
    std::uint64_t corruptEntries() const;
    /** Entries currently resident in memory. */
    std::size_t size() const;

    /** Canonical text serialization (exposed for tests/tooling). */
    static std::string serialize(const CachedResult &value);
    /** Parse serialize() output; nullopt on malformed input. */
    static std::optional<CachedResult>
    deserialize(const std::string &text);

  private:
    void insertLocked(std::uint64_t key, const CachedResult &value)
        REQUIRES(mutex);
    std::string pathFor(std::uint64_t key) const;
    std::optional<CachedResult> loadFromDir(std::uint64_t key);
    void saveToDir(std::uint64_t key, const CachedResult &value);

    struct Entry
    {
        CachedResult value;
        std::list<std::uint64_t>::iterator lruIt;
    };

    mutable Mutex mutex;
    /** Immutable after construction; safe to read without the lock. */
    std::string dir;
    /** Immutable after construction; external persistence tier. */
    ResultStorage *storage = nullptr;
    std::size_t maxEntries;
    std::unordered_map<std::uint64_t, Entry> entries GUARDED_BY(mutex);
    /** Front = most recently used. */
    std::list<std::uint64_t> lru GUARDED_BY(mutex);
    std::uint64_t numHits GUARDED_BY(mutex) = 0;
    std::uint64_t numMisses GUARDED_BY(mutex) = 0;
    std::uint64_t numCorrupt GUARDED_BY(mutex) = 0;
};

} // namespace hmcsim

#endif // HMCSIM_RUNNER_RESULT_CACHE_HH
