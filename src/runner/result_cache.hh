/**
 * @file
 * Content-addressed cache of measured experiment results.
 *
 * Keys are configDigest() values: a result is reusable exactly when
 * the full configuration (pattern, mix, size, mode, ports, windows,
 * seed, device, calibration) hashes identically. The cache keeps a
 * bounded in-memory LRU map and, when constructed with a directory,
 * persists every stored result as one small text file
 * (<digest>.result) so a re-run of a bench suite or sweep skips
 * already-measured points across processes.
 *
 * The on-disk format round-trips doubles as C99 hex floats (%a), so a
 * cache hit is bit-identical to the original measurement -- the
 * determinism contract (serial == parallel == cached) survives
 * persistence.
 *
 * Thread safety: all public members are safe to call concurrently;
 * the sweep runner's workers share one instance.
 */

#ifndef HMCSIM_RUNNER_RESULT_CACHE_HH
#define HMCSIM_RUNNER_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "hmcsim/annotations.hh"
#include "host/experiment.hh"

namespace hmcsim
{

/** What the cache stores per configuration digest. */
struct CachedResult
{
    MeasurementResult result;
    /** StatRegistry::digest() of the run that produced the result. */
    std::uint64_t statDigest = 0;
};

class ResultCache
{
  public:
    /**
     * @param dir Persistence directory; empty = in-memory only. The
     *        directory is created on first store if missing.
     * @param max_entries In-memory LRU capacity (disk files are never
     *        evicted).
     */
    explicit ResultCache(std::string dir = "",
                         std::size_t max_entries = 4096);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** Find a result by config digest (memory first, then disk). */
    std::optional<CachedResult> lookup(std::uint64_t key);

    /** Store a result under @p key (memory + disk when persistent). */
    void store(std::uint64_t key, const CachedResult &value);

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    /** Entries currently resident in memory. */
    std::size_t size() const;

    /** Canonical text serialization (exposed for tests/tooling). */
    static std::string serialize(const CachedResult &value);
    /** Parse serialize() output; nullopt on malformed input. */
    static std::optional<CachedResult>
    deserialize(const std::string &text);

  private:
    void insertLocked(std::uint64_t key, const CachedResult &value)
        REQUIRES(mutex);
    std::string pathFor(std::uint64_t key) const;

    struct Entry
    {
        CachedResult value;
        std::list<std::uint64_t>::iterator lruIt;
    };

    mutable Mutex mutex;
    /** Immutable after construction; safe to read without the lock. */
    std::string dir;
    std::size_t maxEntries;
    std::unordered_map<std::uint64_t, Entry> entries GUARDED_BY(mutex);
    /** Front = most recently used. */
    std::list<std::uint64_t> lru GUARDED_BY(mutex);
    std::uint64_t numHits GUARDED_BY(mutex) = 0;
    std::uint64_t numMisses GUARDED_BY(mutex) = 0;
};

} // namespace hmcsim

#endif // HMCSIM_RUNNER_RESULT_CACHE_HH
