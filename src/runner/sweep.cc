#include "runner/sweep.hh"

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "runner/config_digest.hh"
#include "runner/thread_pool.hh"
#include "sim/random.hh"
#include "sim/wallclock.hh"

namespace hmcsim
{

std::uint64_t
deriveSeed(std::uint64_t sweep_seed, const ExperimentConfig &cfg)
{
    std::uint64_t state =
        sweep_seed ^ configDigest(cfg, /*include_seed=*/false);
    const std::uint64_t seed = splitMix64(state);
    // Seed 0 is reserved as "degenerate" by some generators; remap.
    return seed ? seed : 1;
}

ExperimentConfig
withDerivedSeed(ExperimentConfig cfg, std::uint64_t sweep_seed)
{
    cfg.seed = deriveSeed(sweep_seed, cfg);
    return cfg;
}

std::vector<ExperimentConfig>
SweepAxes::expand() const
{
    // An empty axis contributes the base config's value as its single
    // point, so the nesting below never degenerates to zero points.
    const auto patternAxis =
        patterns.empty() ? std::vector<AccessPattern>{base.pattern}
                         : patterns;
    const auto mixAxis =
        mixes.empty() ? std::vector<RequestMix>{base.mix} : mixes;
    const auto sizeAxis =
        sizes.empty() ? std::vector<Bytes>{base.requestSize} : sizes;
    const auto modeAxis =
        modes.empty() ? std::vector<AddressingMode>{base.mode} : modes;
    const auto portAxis =
        ports.empty() ? std::vector<unsigned>{base.numPorts} : ports;
    const auto backendAxis =
        backends.empty()
            ? std::vector<BackendKind>{base.device.vault.backend.kind}
            : backends;
    const auto measureAxis =
        measures.empty() ? std::vector<Tick>{base.measure} : measures;

    std::vector<ExperimentConfig> out;
    out.reserve(patternAxis.size() * mixAxis.size() * sizeAxis.size() *
                modeAxis.size() * portAxis.size() *
                backendAxis.size() * measureAxis.size());
    for (const AccessPattern &pattern : patternAxis) {
        for (const RequestMix mix : mixAxis) {
            for (const Bytes size : sizeAxis) {
                for (const AddressingMode mode : modeAxis) {
                    for (const unsigned numPorts : portAxis) {
                        for (const BackendKind backend : backendAxis) {
                            for (const Tick measure : measureAxis) {
                                ExperimentConfig cfg = base;
                                cfg.pattern = pattern;
                                cfg.mix = mix;
                                cfg.requestSize = size;
                                cfg.mode = mode;
                                cfg.numPorts = numPorts;
                                cfg.device.vault.backend.kind =
                                    backend;
                                cfg.measure = measure;
                                out.push_back(std::move(cfg));
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts(std::move(opts)) {}

/**
 * One warm-start group's shared state. The warm-up is simulated
 * lazily (first cache-missing member pays for it, under call_once so
 * concurrent members block instead of racing); afterwards the warm
 * module is only ever fork()ed, which is read-only, so any number of
 * workers may serve members concurrently.
 */
struct SweepRunner::WarmGroup
{
    std::once_flag once;
    WarmStart warm;
};

SweepPointResult
SweepRunner::runPoint(std::size_t index, const ExperimentConfig &cfg,
                      WarmGroup *group) const
{
    SweepPointResult point;
    point.index = index;
    point.config = cfg;
    point.digest = configDigest(cfg);

    // A traced point is always simulated: the cache stores neither
    // breakdowns nor event streams, so serving a hit would silently
    // drop them.
    const bool tracing = opts.trace.enabled;
    if (opts.cache && !tracing) {
        if (const auto cached = opts.cache->lookup(point.digest)) {
            point.result = cached->result;
            point.statDigest = cached->statDigest;
            point.fromCache = true;
            return point;
        }
    }

    ChromeTraceBuffer buffer;
    RunOptions run_opts;
    if (tracing) {
        run_opts.trace = opts.trace;
        run_opts.trace.sink = &buffer;
    }

    // Host-time metadata only (excluded from the determinism
    // contract); the shim keeps the nondeterminism lint rule's
    // allowlist to one file.
    const WallClockSample start = wallClockNow();
    RunArtifacts artifacts;
    if (group) {
        // Grouping already excludes tracing (run() never assigns a
        // group while opts.trace.enabled).
        std::call_once(group->once,
                       [&] { group->warm = prepareWarmStart(cfg); });
        point.result = runExperimentFrom(group->warm, cfg, &artifacts);
    } else {
        point.result = runExperiment(cfg, run_opts, &artifacts);
    }
    point.statDigest = artifacts.statDigest;
    point.wallMs = wallMsBetween(start, wallClockNow());
    if (tracing)
        point.traceJson = buffer.takeEvents();

    if (opts.cache && !tracing)
        opts.cache->store(point.digest,
                          {point.result, point.statDigest});
    return point;
}

std::string
joinTraceEvents(const std::vector<SweepPointResult> &results)
{
    std::string out;
    for (const SweepPointResult &point : results)
        out += point.traceJson;
    return out;
}

std::vector<SweepPointResult>
SweepRunner::run(std::vector<ExperimentConfig> configs)
{
    // Seed derivation happens up front, identically for the inline
    // and pooled paths -- a job's identity is fixed before dispatch.
    if (opts.deriveSeeds) {
        for (ExperimentConfig &cfg : configs)
            cfg.seed = deriveSeed(opts.sweepSeed, cfg);
    }

    // Warm-start grouping, keyed by warmupDigest *after* seed
    // derivation (the seed is part of the warm-up identity). The
    // grouping is a pure function of the configs, so it cannot
    // perturb jobs-invariance; the group members themselves produce
    // bit-identical results either way (runExperimentFrom's
    // contract).
    std::map<std::uint64_t, std::unique_ptr<WarmGroup>> groups;
    std::vector<WarmGroup *> group_of(configs.size(), nullptr);
    if (opts.warmStart && !opts.trace.enabled) {
        std::map<std::uint64_t, std::vector<std::size_t>> members;
        for (std::size_t i = 0; i < configs.size(); ++i)
            members[warmupDigest(configs[i])].push_back(i);
        for (auto &entry : members) {
            // A lone point gains nothing from warm+fork; run it cold.
            if (entry.second.size() < 2)
                continue;
            auto group = std::make_unique<WarmGroup>();
            for (const std::size_t i : entry.second)
                group_of[i] = group.get();
            groups.emplace(entry.first, std::move(group));
        }
    }

    std::vector<SweepPointResult> results(configs.size());
    const unsigned jobs =
        opts.jobs ? opts.jobs : ThreadPool::hardwareConcurrency();
    if (jobs <= 1 || configs.size() <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            results[i] = runPoint(i, configs[i], group_of[i]);
    } else {
        const auto cap = static_cast<unsigned>(configs.size());
        ThreadPool pool(jobs < cap ? jobs : cap);
        pool.parallelFor(configs.size(), [&](std::size_t i) {
            results[i] = runPoint(i, configs[i], group_of[i]);
        });
    }

    // Sinks run on the caller's thread, in canonical order, so their
    // output never depends on completion order.
    for (ResultSink *sink : opts.sinks) {
        for (const SweepPointResult &point : results)
            sink->write(point);
        sink->finish();
    }
    return results;
}

std::vector<SweepPointResult>
SweepRunner::run(const SweepAxes &axes)
{
    return run(axes.expand());
}

} // namespace hmcsim
