#include "runner/sweep.hh"

#include <utility>

#include "runner/config_digest.hh"
#include "runner/thread_pool.hh"
#include "sim/random.hh"
#include "sim/wallclock.hh"

namespace hmcsim
{

std::uint64_t
deriveSeed(std::uint64_t sweep_seed, const ExperimentConfig &cfg)
{
    std::uint64_t state =
        sweep_seed ^ configDigest(cfg, /*include_seed=*/false);
    const std::uint64_t seed = splitMix64(state);
    // Seed 0 is reserved as "degenerate" by some generators; remap.
    return seed ? seed : 1;
}

ExperimentConfig
withDerivedSeed(ExperimentConfig cfg, std::uint64_t sweep_seed)
{
    cfg.seed = deriveSeed(sweep_seed, cfg);
    return cfg;
}

std::vector<ExperimentConfig>
SweepAxes::expand() const
{
    // An empty axis contributes the base config's value as its single
    // point, so the nesting below never degenerates to zero points.
    const auto patternAxis =
        patterns.empty() ? std::vector<AccessPattern>{base.pattern}
                         : patterns;
    const auto mixAxis =
        mixes.empty() ? std::vector<RequestMix>{base.mix} : mixes;
    const auto sizeAxis =
        sizes.empty() ? std::vector<Bytes>{base.requestSize} : sizes;
    const auto modeAxis =
        modes.empty() ? std::vector<AddressingMode>{base.mode} : modes;
    const auto portAxis =
        ports.empty() ? std::vector<unsigned>{base.numPorts} : ports;
    const auto backendAxis =
        backends.empty()
            ? std::vector<BackendKind>{base.device.vault.backend.kind}
            : backends;

    std::vector<ExperimentConfig> out;
    out.reserve(patternAxis.size() * mixAxis.size() * sizeAxis.size() *
                modeAxis.size() * portAxis.size() *
                backendAxis.size());
    for (const AccessPattern &pattern : patternAxis) {
        for (const RequestMix mix : mixAxis) {
            for (const Bytes size : sizeAxis) {
                for (const AddressingMode mode : modeAxis) {
                    for (const unsigned numPorts : portAxis) {
                        for (const BackendKind backend : backendAxis) {
                            ExperimentConfig cfg = base;
                            cfg.pattern = pattern;
                            cfg.mix = mix;
                            cfg.requestSize = size;
                            cfg.mode = mode;
                            cfg.numPorts = numPorts;
                            cfg.device.vault.backend.kind = backend;
                            out.push_back(std::move(cfg));
                        }
                    }
                }
            }
        }
    }
    return out;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts(std::move(opts)) {}

SweepPointResult
SweepRunner::runPoint(std::size_t index, const ExperimentConfig &cfg) const
{
    SweepPointResult point;
    point.index = index;
    point.config = cfg;
    point.digest = configDigest(cfg);

    // A traced point is always simulated: the cache stores neither
    // breakdowns nor event streams, so serving a hit would silently
    // drop them.
    const bool tracing = opts.trace.enabled;
    if (opts.cache && !tracing) {
        if (const auto cached = opts.cache->lookup(point.digest)) {
            point.result = cached->result;
            point.statDigest = cached->statDigest;
            point.fromCache = true;
            return point;
        }
    }

    ChromeTraceBuffer buffer;
    RunOptions run_opts;
    if (tracing) {
        run_opts.trace = opts.trace;
        run_opts.trace.sink = &buffer;
    }

    // Host-time metadata only (excluded from the determinism
    // contract); the shim keeps the nondeterminism lint rule's
    // allowlist to one file.
    const WallClockSample start = wallClockNow();
    RunArtifacts artifacts;
    point.result = runExperiment(cfg, run_opts, &artifacts);
    point.statDigest = artifacts.statDigest;
    point.wallMs = wallMsBetween(start, wallClockNow());
    if (tracing)
        point.traceJson = buffer.takeEvents();

    if (opts.cache && !tracing)
        opts.cache->store(point.digest,
                          {point.result, point.statDigest});
    return point;
}

std::string
joinTraceEvents(const std::vector<SweepPointResult> &results)
{
    std::string out;
    for (const SweepPointResult &point : results)
        out += point.traceJson;
    return out;
}

std::vector<SweepPointResult>
SweepRunner::run(std::vector<ExperimentConfig> configs)
{
    // Seed derivation happens up front, identically for the inline
    // and pooled paths -- a job's identity is fixed before dispatch.
    if (opts.deriveSeeds) {
        for (ExperimentConfig &cfg : configs)
            cfg.seed = deriveSeed(opts.sweepSeed, cfg);
    }

    std::vector<SweepPointResult> results(configs.size());
    const unsigned jobs =
        opts.jobs ? opts.jobs : ThreadPool::hardwareConcurrency();
    if (jobs <= 1 || configs.size() <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            results[i] = runPoint(i, configs[i]);
    } else {
        const auto cap = static_cast<unsigned>(configs.size());
        ThreadPool pool(jobs < cap ? jobs : cap);
        pool.parallelFor(configs.size(), [&](std::size_t i) {
            results[i] = runPoint(i, configs[i]);
        });
    }

    // Sinks run on the caller's thread, in canonical order, so their
    // output never depends on completion order.
    for (ResultSink *sink : opts.sinks) {
        for (const SweepPointResult &point : results)
            sink->write(point);
        sink->finish();
    }
    return results;
}

std::vector<SweepPointResult>
SweepRunner::run(const SweepAxes &axes)
{
    return run(axes.expand());
}

} // namespace hmcsim
