/**
 * @file
 * Content-addressed identity of an experiment configuration.
 *
 * The digest is an FNV-1a hash over a *canonical serialization* of
 * every field of ExperimentConfig (the same bit-exact hashing idiom
 * as StatRegistry::digest()): each field is appended in a fixed,
 * documented order with explicit widths, so the value depends only on
 * the configured experiment -- never on struct layout, padding bytes,
 * or the order a caller happened to assign fields in. Two configs
 * that would simulate identically hash identically; flipping any
 * single field (timing constant, mask bit, seed) changes the digest.
 *
 * Uses: result-cache keys (runner/result_cache.hh), per-job seed
 * derivation (runner/sweep.hh), and the digest column of the
 * structured sinks, which lets downstream tooling join result rows
 * back to exact configurations.
 */

#ifndef HMCSIM_RUNNER_CONFIG_DIGEST_HH
#define HMCSIM_RUNNER_CONFIG_DIGEST_HH

#include <cstdint>

#include "host/experiment.hh"

namespace hmcsim
{

/**
 * Canonical FNV-1a digest of @p cfg.
 *
 * @param include_seed When false, the seed field is skipped; the
 *        sweep runner uses this form so a job's derived seed can be
 *        a function of "everything but the seed" without circularity.
 */
std::uint64_t configDigest(const ExperimentConfig &cfg,
                           bool include_seed = true);

/**
 * Canonical FNV-1a digest of a stream-GUPS configuration. Uses a
 * distinct version tag, so stream and bandwidth/latency configs can
 * never collide even when their shared CommonExperimentConfig fields
 * are identical.
 */
std::uint64_t configDigest(const StreamExperimentConfig &cfg,
                           bool include_seed = true);

/**
 * Canonical FNV-1a digest of everything that determines a config's
 * *warm-up phase*: every configDigest() field except the measurement
 * window, with the seed always included. Two configs with equal
 * warmupDigest() build bit-identical simulators and execute the same
 * event sequence through cfg.warmup, so one warmed simulator can be
 * forked to serve all of them (host/experiment.hh's runExperimentFrom
 * and the sweep runner's warm-start grouping). Distinct version tag;
 * never comparable with configDigest() values.
 */
std::uint64_t warmupDigest(const ExperimentConfig &cfg);

} // namespace hmcsim

#endif // HMCSIM_RUNNER_CONFIG_DIGEST_HH
