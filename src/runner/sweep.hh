/**
 * @file
 * SweepRunner: the parallel experiment-campaign orchestrator.
 *
 * Every figure/table bench and the CLI `sweep` subcommand replay the
 * paper's sweep axes (pattern x mix x size x mode x ports x device
 * overrides). Each point is an isolated build-run-measure unit
 * (ExperimentConfig -> fresh Ac510Module -> MeasurementResult), so a
 * campaign parallelizes perfectly -- as long as nothing about a
 * point's identity depends on *when* or *where* it ran.
 *
 * Determinism contract (tested in tests/test_runner.cc, enforced by
 * CI's --jobs 1 vs --jobs 2 JSONL diff):
 *
 *  1. Axis expansion is canonical: patterns outermost, then mix,
 *     size, mode, ports, backend. The job list is a pure function of
 *     the axes.
 *  2. Per-job seeds derive from sweepSeed ^ configDigest(cfg, no
 *     seed) -- content, never submission order or thread identity.
 *  3. Workers write results into pre-assigned slots; sinks observe
 *     results in canonical order only after the sweep completes.
 *
 * Therefore `--jobs N` is bit-identical to `--jobs 1`, and a cached
 * result is bit-identical to a fresh measurement.
 */

#ifndef HMCSIM_RUNNER_SWEEP_HH
#define HMCSIM_RUNNER_SWEEP_HH

#include <cstdint>
#include <vector>

#include "gups/patterns.hh"
#include "host/experiment.hh"
#include "runner/result_cache.hh"
#include "runner/sink.hh"

namespace hmcsim
{

/**
 * Derive the seed for one sweep point: mixes the campaign seed with
 * the point's content digest (seed field excluded) through SplitMix64
 * so neighboring points get decorrelated generator streams. Never
 * returns 0. Identical for the serial and parallel paths by
 * construction -- this function is the single source of truth.
 */
std::uint64_t deriveSeed(std::uint64_t sweep_seed,
                         const ExperimentConfig &cfg);

/** cfg with its seed replaced by deriveSeed(sweep_seed, cfg). */
ExperimentConfig withDerivedSeed(ExperimentConfig cfg,
                                 std::uint64_t sweep_seed);

/**
 * A sweep's axes. expand() produces the cross product over a shared
 * base config in canonical order; empty axes mean "keep the base
 * config's value" (a single implicit point on that axis).
 */
struct SweepAxes
{
    std::vector<AccessPattern> patterns;
    std::vector<RequestMix> mixes;
    std::vector<Bytes> sizes;
    std::vector<AddressingMode> modes;
    std::vector<unsigned> ports;
    /** Vault storage engines (mem/backend.hh). Each point keeps the
     *  base config's backend parameters and swaps only the kind. */
    std::vector<BackendKind> backends;
    /** Measurement windows; the innermost axis. Points differing only
     *  here share their whole warm-up phase, so a measure-axis sweep
     *  is the canonical warm-start campaign (SweepOptions::warmStart):
     *  one warm-up serves every window length. */
    std::vector<Tick> measures;
    /** Windows, device overrides, and calibration for every point. */
    ExperimentConfig base;

    /** Cross product in canonical nesting order (patterns outermost). */
    std::vector<ExperimentConfig> expand() const;
};

/** Orchestration knobs. */
struct SweepOptions
{
    /** Concurrent jobs; 0 = hardware concurrency, 1 = run inline. */
    unsigned jobs = 0;
    /** Campaign seed mixed into every per-job seed. */
    std::uint64_t sweepSeed = 1;
    /**
     * Replace each config's seed via deriveSeed(). Off = respect the
     * seeds the caller set (still jobs-invariant, but two identical
     * configs then share one generator stream).
     */
    bool deriveSeeds = true;
    /** Optional result cache consulted before and fed after each job. */
    ResultCache *cache = nullptr;
    /** Sinks written in canonical order after the sweep completes. */
    std::vector<ResultSink *> sinks;
    /**
     * Lifecycle tracing applied to every point. Set trace.enabled
     * (and optionally samplePeriod); the runner gives each point a
     * private ChromeTraceBuffer and stores the sampled events in
     * SweepPointResult::traceJson, so the trace.sink field is ignored
     * here. Concatenating the per-point fragments in canonical order
     * (joinTraceEvents) is jobs-invariant like every other output.
     * Tracing bypasses the result cache: a traced point is always
     * simulated and never stored.
     */
    TraceConfig trace;
    /**
     * Warm-start mode: group points whose warm-up phases are
     * bit-identical (equal warmupDigest -- everything but the
     * measurement window, seed included), simulate each group's
     * warm-up once on whichever worker needs it first, and serve the
     * members by forking the warmed simulator (Ac510Module::fork via
     * runExperimentFrom). Results and stat digests stay bit-identical
     * to cold runs and jobs-invariant; the cache composes unchanged
     * (hits skip the fork, misses feed it). Groups of one run cold --
     * a lone point gains nothing from forking. Ignored while tracing
     * (fork rejects tracers). Caveat: with deriveSeeds on, per-point
     * seeds hash the full config *including* measure, so a
     * measure-axis sweep degenerates to singleton groups; pair
     * warm-start with deriveSeeds=false (CLI --same-seeds).
     */
    bool warmStart = false;
};

/**
 * Concatenate every point's trace-event fragments in canonical point
 * order; wrap the result with writeChromeTrace() to get one valid
 * Chrome/Perfetto JSON document for the whole sweep.
 */
std::string
joinTraceEvents(const std::vector<SweepPointResult> &results);

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /** Run every config; results come back in input order. */
    std::vector<SweepPointResult>
    run(std::vector<ExperimentConfig> configs);

    /** Expand @p axes and run the cross product. */
    std::vector<SweepPointResult> run(const SweepAxes &axes);

  private:
    /** Lazily-warmed shared state of one warm-start group. */
    struct WarmGroup;

    /** @param group Non-null when the point belongs to a warm-start
     *  group; a cache miss then forks the group's warm simulator
     *  (building it under call_once on first need). */
    SweepPointResult runPoint(std::size_t index,
                              const ExperimentConfig &cfg,
                              WarmGroup *group) const;

    SweepOptions opts;
};

} // namespace hmcsim

#endif // HMCSIM_RUNNER_SWEEP_HH
