#include "runner/config_digest.hh"

#include <cstring>
#include <string>

namespace hmcsim
{

namespace
{

/** FNV-1a accumulator with typed, width-explicit append helpers. */
class Fnv1a
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash ^= p[i];
            hash *= 0x100000001B3ULL;
        }
    }

    void
    u64(std::uint64_t v)
    {
        bytes(&v, sizeof(v));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** Length-prefixed so "ab","c" never collides with "a","bc". */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return hash; }

  private:
    std::uint64_t hash = 0xCBF29CE484222325ULL;
};

void
mixTimings(Fnv1a &h, const DramTimings &t)
{
    h.u64(t.tRcd);
    h.u64(t.tCl);
    h.u64(t.tRp);
    h.u64(t.tRas);
    h.u64(t.tWr);
    h.u64(t.tCcd);
    h.u64(t.tBeat);
    h.u64(t.beatBytes);
    h.u64(t.rowBytes);
    h.u64(t.tRefi);
    h.u64(t.tRfc);
}

void
mixBackend(Fnv1a &h, const MemoryBackendConfig &b)
{
    h.u64(static_cast<std::uint64_t>(b.kind));
    mixTimings(h, b.ddrTimings);
    h.u64(static_cast<std::uint64_t>(b.ddrPolicy));
    h.f64(b.ddrBusBytesPerSecond);
    h.u64(b.ddrTFaw);
    h.u64(b.ddrActivatesPerFaw);
    h.u64(b.nvmReadLatency);
    h.u64(b.nvmWriteLatency);
    h.u64(b.nvmWriteAck);
    h.u64(b.nvmWriteQueueDepth);
}

void
mixDevice(Fnv1a &h, const HmcDeviceConfig &d)
{
    h.str(d.structure.name);
    h.u64(d.structure.capacity);
    h.u64(d.structure.numDramLayers);
    h.u64(d.structure.dramLayerGbits);
    h.u64(d.structure.numQuadrants);
    h.u64(d.structure.numVaults);
    h.u64(d.structure.partitionsPerLayer);
    h.u64(d.structure.banksPerPartition);

    h.u64(d.vault.numBanks);
    mixTimings(h, d.vault.timings);
    h.u64(static_cast<std::uint64_t>(d.vault.policy));
    h.u64(d.vault.controllerLatency);
    h.u64(d.vault.commandBeats);
    h.u64(d.vault.atomicLatency);
    h.u64(d.vault.refreshEnabled ? 1 : 0);
    h.f64(d.vault.refreshMultiplier);
    mixBackend(h, d.vault.backend);

    h.u64(static_cast<std::uint64_t>(d.maxBlock));
    h.u64(static_cast<std::uint64_t>(d.mapping));
    h.u64(d.quadrantLocalLatency);
    h.u64(d.quadrantHopLatency);
    h.u64(d.responsePathLatency);
}

void
mixController(Fnv1a &h, const ControllerCalibration &c)
{
    h.u64(c.fpgaCyclePs);
    h.u64(c.flitsToParallelCycles);
    h.u64(c.arbiterCycles);
    h.u64(c.seqFlowCrcCycles);
    h.u64(c.serdesConvertCycles);
    h.u64(c.txPropagation);
    h.u64(c.rxPropagation);
    h.u64(c.rxFixedCycles);
    h.u64(c.rxPerFlit);
    h.f64(c.txBytesPerSecondPerLink);
    h.f64(c.rxBytesPerSecondPerLink);
    h.u64(c.txPerPacketOverheadBytes);
    h.u64(c.rxPerPacketOverheadBytes);
    h.u64(c.numLinks);
    h.f64(c.bitErrorRate);
    h.u64(c.inputBufferFlits);
}

void
mixPattern(Fnv1a &h, const AccessPattern &p)
{
    // The pattern name is cosmetic for simulation but flows into
    // MeasurementResult::patternName, so it is part of the identity a
    // cached result must reproduce.
    h.str(p.name);
    h.u64(p.mask);
    h.u64(p.antiMask);
    h.u64(p.vaultSpan);
    h.u64(p.bankSpan);
}

} // namespace

std::uint64_t
configDigest(const ExperimentConfig &cfg, bool include_seed)
{
    Fnv1a h;
    // Version tag: bump when the serialization below changes, so
    // stale on-disk cache entries can never match new digests.
    // v2: vault backend selection + per-backend parameters.
    h.str("hmcsim.experiment.v2");

    mixPattern(h, cfg.pattern);

    h.u64(static_cast<std::uint64_t>(cfg.mix));
    h.u64(cfg.requestSize);
    h.u64(static_cast<std::uint64_t>(cfg.mode));
    h.u64(cfg.numPorts);
    h.u64(cfg.warmup);
    h.u64(cfg.measure);
    if (include_seed)
        h.u64(cfg.seed);

    mixDevice(h, cfg.device);
    mixController(h, cfg.controller);
    return h.value();
}

std::uint64_t
warmupDigest(const ExperimentConfig &cfg)
{
    Fnv1a h;
    // Distinct tag: warm-up identities live in their own namespace.
    // v1: configDigest v2 minus the measure window, seed included.
    h.str("hmcsim.warmup.v1");

    mixPattern(h, cfg.pattern);

    h.u64(static_cast<std::uint64_t>(cfg.mix));
    h.u64(cfg.requestSize);
    h.u64(static_cast<std::uint64_t>(cfg.mode));
    h.u64(cfg.numPorts);
    h.u64(cfg.warmup);
    // cfg.measure deliberately omitted: the measurement window starts
    // after the fork point, so it cannot influence the warm state.
    h.u64(cfg.seed);

    mixDevice(h, cfg.device);
    mixController(h, cfg.controller);
    return h.value();
}

std::uint64_t
configDigest(const StreamExperimentConfig &cfg, bool include_seed)
{
    Fnv1a h;
    // Distinct version tag: a stream config can never collide with a
    // bandwidth/latency config, even with identical shared fields.
    // v2: vault backend selection + per-backend parameters.
    h.str("hmcsim.stream.v2");

    mixPattern(h, cfg.pattern);
    h.u64(cfg.requestSize);
    h.u64(cfg.requestsPerStream);
    h.u64(cfg.repetitions);
    if (include_seed)
        h.u64(cfg.seed);

    mixDevice(h, cfg.device);
    mixController(h, cfg.controller);
    return h.value();
}

} // namespace hmcsim
