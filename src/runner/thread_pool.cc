#include "runner/thread_pool.hh"

#include <utility>

namespace hmcsim
{

unsigned
ThreadPool::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : workerCount(num_threads ? num_threads : hardwareConcurrency())
{
    queues.reserve(workerCount);
    for (unsigned i = 0; i < workerCount; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(workerCount);
    for (unsigned i = 0; i < workerCount; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        // Publish the stop flag under the sleep mutex so no worker can
        // check it, decide to wait, and then miss the notify.
        MutexLock lock(sleepMutex);
        stopping.store(true);
    }
    wake.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

std::future<void>
ThreadPool::submit(Task task)
{
    const auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::move(task));
    std::future<void> future = packaged->get_future();

    const unsigned slot =
        nextQueue.fetch_add(1, std::memory_order_relaxed) % numWorkers();
    {
        MutexLock lock(queues[slot]->mutex);
        queues[slot]->tasks.emplace_back(
            [packaged] { (*packaged)(); });
    }
    pending.fetch_add(1, std::memory_order_release);
    wake.notify_one();
    return future;
}

bool
ThreadPool::tryRunOne(unsigned self)
{
    Task task;
    {
        // Own work first, newest-first.
        MutexLock lock(queues[self]->mutex);
        if (!queues[self]->tasks.empty()) {
            task = std::move(queues[self]->tasks.back());
            queues[self]->tasks.pop_back();
        }
    }
    if (!task) {
        // Steal oldest-first from the siblings.
        const unsigned n = numWorkers();
        for (unsigned off = 1; off < n && !task; ++off) {
            WorkerQueue &victim = *queues[(self + off) % n];
            MutexLock lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = std::move(victim.tasks.front());
                victim.tasks.pop_front();
            }
        }
    }
    if (!task)
        return false;

    pending.fetch_sub(1, std::memory_order_acq_rel);
    task();
    return true;
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (true) {
        if (tryRunOne(self))
            continue;
        MutexLock lock(sleepMutex);
        if (stopping.load() && pending.load() == 0)
            return;
        wake.wait(sleepMutex, [this] {
            return stopping.load() || pending.load() > 0;
        });
        if (stopping.load() && pending.load() == 0)
            return;
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(submit([&fn, i] { fn(i); }));

    std::exception_ptr first;
    for (std::future<void> &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace hmcsim
