/**
 * @file
 * Work-stealing thread pool for sweep orchestration.
 *
 * Each worker owns a deque of tasks: it pops its own work LIFO (hot
 * caches) and steals FIFO from siblings when empty, so a burst of
 * submissions spreads across cores without a single contended queue.
 * Tasks are coarse (one simulated experiment each, milliseconds of
 * CPU), so the pool optimizes for simplicity and provable race
 * freedom over sub-microsecond dispatch.
 *
 * Determinism contract: the pool makes NO ordering promises between
 * tasks. Anything that must be reproducible (seeds, output order)
 * must be fixed *before* submission and reassembled by slot *after*
 * completion -- see SweepRunner, which derives per-job seeds from
 * content digests and writes results into pre-assigned indices.
 */

#ifndef HMCSIM_RUNNER_THREAD_POOL_HH
#define HMCSIM_RUNNER_THREAD_POOL_HH

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "hmcsim/annotations.hh"

namespace hmcsim
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param num_threads Worker count; 0 = hardwareConcurrency().
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned numWorkers() const { return workerCount; }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned hardwareConcurrency();

    /**
     * Enqueue @p task. The returned future completes when the task
     * ran; an exception thrown by the task is captured and rethrown
     * from future::get() on the caller's thread.
     */
    std::future<void> submit(Task task);

    /**
     * Run fn(0..n-1) across the pool and block until every index
     * completed. The first captured exception (lowest index) is
     * rethrown after all indices finished, so partial results are
     * never silently torn.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    /** One worker's deque; stealable by every other worker. */
    struct WorkerQueue
    {
        Mutex mutex;
        std::deque<Task> tasks GUARDED_BY(mutex);
    };

    void workerLoop(unsigned self);
    bool tryRunOne(unsigned self);

    /**
     * Fixed before any worker spawns; workers must consult this, not
     * workers.size(), which the constructor is still growing while
     * early workers already run.
     */
    const unsigned workerCount;
    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;

    /** Serializes only the sleep/wake handshake: the data the idle
     *  predicate reads (pending, stopping) is atomic, so no member is
     *  GUARDED_BY this mutex -- it exists to close the check-then-
     *  sleep race against notify. */
    Mutex sleepMutex; // lint:allow(mutex-unguarded)
    CondVar wake;
    /** Tasks submitted but not yet taken by a worker. */
    std::atomic<std::size_t> pending{0};
    std::atomic<bool> stopping{false};
    /** Round-robin submission cursor. */
    std::atomic<unsigned> nextQueue{0};
};

} // namespace hmcsim

#endif // HMCSIM_RUNNER_THREAD_POOL_HH
