// lint:file(persistence) -- on-disk results must round-trip bit-exactly: %a hexfloat only, enforced by hmcsim-lint.
#include "runner/result_cache.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace hmcsim
{

namespace
{

/** Lossless double -> text: C99 hex float round-trips every bit. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

void
putStats(std::ostream &out, const char *key, const SampleStats &s)
{
    const SampleStats::Raw raw = s.raw();
    out << key << ' ' << raw.count << ' ' << fmtDouble(raw.sum) << ' '
        << fmtDouble(raw.min) << ' ' << fmtDouble(raw.max) << ' '
        << fmtDouble(raw.welfordMean) << ' '
        << fmtDouble(raw.welfordM2) << '\n';
}

/** Expect "<key> ..." on the next line; return the value part. */
bool
takeLine(std::istream &in, const std::string &key, std::string &value)
{
    std::string line;
    if (!std::getline(in, line))
        return false;
    if (line.rfind(key + " ", 0) != 0)
        return false;
    value = line.substr(key.size() + 1);
    return true;
}

bool
parseDouble(std::istringstream &in, double &out)
{
    std::string token;
    if (!(in >> token))
        return false;
    char *end = nullptr;
    out = std::strtod(token.c_str(), &end);
    return end && *end == '\0';
}

bool
takeDouble(std::istream &in, const std::string &key, double &out)
{
    std::string value;
    if (!takeLine(in, key, value))
        return false;
    std::istringstream fields(value);
    return parseDouble(fields, out);
}

bool
takeU64(std::istream &in, const std::string &key, std::uint64_t &out)
{
    std::string value;
    if (!takeLine(in, key, value))
        return false;
    std::istringstream fields(value);
    return static_cast<bool>(fields >> out);
}

bool
takeStats(std::istream &in, const std::string &key, SampleStats &out)
{
    std::string value;
    if (!takeLine(in, key, value))
        return false;
    std::istringstream fields(value);
    SampleStats::Raw raw;
    if (!(fields >> raw.count))
        return false;
    if (!parseDouble(fields, raw.sum) || !parseDouble(fields, raw.min) ||
        !parseDouble(fields, raw.max) ||
        !parseDouble(fields, raw.welfordMean) ||
        !parseDouble(fields, raw.welfordM2)) {
        return false;
    }
    out = SampleStats::fromRaw(raw);
    return true;
}

} // namespace

std::string
serializeResultFields(const CachedResult &value)
{
    const MeasurementResult &m = value.result;
    std::ostringstream out;
    out << "patternName " << m.patternName << '\n';
    out << "mix " << static_cast<std::uint64_t>(m.mix) << '\n';
    out << "requestSize " << m.requestSize << '\n';
    out << "rawGBps " << fmtDouble(m.rawGBps) << '\n';
    out << "mrps " << fmtDouble(m.mrps) << '\n';
    out << "readMrps " << fmtDouble(m.readMrps) << '\n';
    out << "writeMrps " << fmtDouble(m.writeMrps) << '\n';
    out << "readPayloadGBps " << fmtDouble(m.readPayloadGBps) << '\n';
    out << "writePayloadGBps " << fmtDouble(m.writePayloadGBps) << '\n';
    putStats(out, "readLatencyNs", m.readLatencyNs);
    putStats(out, "writeLatencyNs", m.writeLatencyNs);
    out << "readLatencyP50Ns " << fmtDouble(m.readLatencyP50Ns) << '\n';
    out << "readLatencyP99Ns " << fmtDouble(m.readLatencyP99Ns) << '\n';
    out << "readLatencyP999Ns " << fmtDouble(m.readLatencyP999Ns)
        << '\n';
    out << "statDigest " << value.statDigest << '\n';
    return out.str();
}

bool
parseResultFields(std::istream &in, CachedResult &out)
{
    MeasurementResult &m = out.result;
    std::uint64_t mix = 0;
    if (!takeLine(in, "patternName", m.patternName) ||
        !takeU64(in, "mix", mix) ||
        !takeU64(in, "requestSize", m.requestSize) ||
        !takeDouble(in, "rawGBps", m.rawGBps) ||
        !takeDouble(in, "mrps", m.mrps) ||
        !takeDouble(in, "readMrps", m.readMrps) ||
        !takeDouble(in, "writeMrps", m.writeMrps) ||
        !takeDouble(in, "readPayloadGBps", m.readPayloadGBps) ||
        !takeDouble(in, "writePayloadGBps", m.writePayloadGBps) ||
        !takeStats(in, "readLatencyNs", m.readLatencyNs) ||
        !takeStats(in, "writeLatencyNs", m.writeLatencyNs) ||
        !takeDouble(in, "readLatencyP50Ns", m.readLatencyP50Ns) ||
        !takeDouble(in, "readLatencyP99Ns", m.readLatencyP99Ns) ||
        !takeDouble(in, "readLatencyP999Ns", m.readLatencyP999Ns) ||
        !takeU64(in, "statDigest", out.statDigest)) {
        return false;
    }
    m.mix = static_cast<RequestMix>(mix);
    return true;
}

ResultCache::ResultCache(std::string dir, std::size_t max_entries)
    : dir(std::move(dir)), maxEntries(max_entries ? max_entries : 1)
{
}

ResultCache::ResultCache(ResultStorage &storage,
                         std::size_t max_entries)
    : storage(&storage), maxEntries(max_entries ? max_entries : 1)
{
}

std::string
ResultCache::pathFor(std::uint64_t key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.result",
                  static_cast<unsigned long long>(key));
    return dir + "/" + name;
}

void
ResultCache::insertLocked(std::uint64_t key, const CachedResult &value)
{
    const auto it = entries.find(key);
    if (it != entries.end()) {
        lru.erase(it->second.lruIt);
        lru.push_front(key);
        it->second = {value, lru.begin()};
        return;
    }
    lru.push_front(key);
    entries.emplace(key, Entry{value, lru.begin()});
    while (entries.size() > maxEntries) {
        entries.erase(lru.back());
        lru.pop_back();
    }
}

std::optional<CachedResult>
ResultCache::loadFromDir(std::uint64_t key)
{
    std::ifstream in(pathFor(key));
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    if (auto value = deserialize(text.str()))
        return value;
    warn("result cache: ignoring malformed entry %s",
         pathFor(key).c_str());
    {
        MutexLock lock(mutex);
        ++numCorrupt;
    }
    return std::nullopt;
}

std::optional<CachedResult>
ResultCache::lookup(std::uint64_t key)
{
    {
        MutexLock lock(mutex);
        const auto it = entries.find(key);
        if (it != entries.end()) {
            lru.erase(it->second.lruIt);
            lru.push_front(key);
            it->second.lruIt = lru.begin();
            ++numHits;
            return it->second.value;
        }
    }

    // Persistence-tier I/O runs unlocked so a slow disk or claim wait
    // stalls only this thread. Two threads may both miss here and
    // simulate the same point once each; the results are identical by
    // the determinism contract, so the duplicate write is harmless.
    std::optional<CachedResult> loaded;
    if (storage)
        loaded = storage->load(key);
    else if (!dir.empty())
        loaded = loadFromDir(key);

    MutexLock lock(mutex);
    if (loaded) {
        insertLocked(key, *loaded);
        ++numHits;
        return loaded;
    }
    ++numMisses;
    return std::nullopt;
}

void
ResultCache::saveToDir(std::uint64_t key, const CachedResult &value)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = pathFor(key);
    // Write-to-temp + atomic rename: a reader either sees the whole
    // entry or none of it, even if this process dies mid-write. The
    // pid suffix keeps concurrent writers of the same key from
    // clobbering each other's temp file.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream out(tmp);
        if (!out) {
            warn("result cache: cannot write %s", tmp.c_str());
            return;
        }
        out << serialize(value);
        if (!out.flush()) {
            warn("result cache: short write to %s", tmp.c_str());
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: cannot rename %s -> %s", tmp.c_str(),
             path.c_str());
        std::filesystem::remove(tmp, ec);
    }
}

void
ResultCache::store(std::uint64_t key, const CachedResult &value)
{
    {
        MutexLock lock(mutex);
        insertLocked(key, value);
    }
    if (storage)
        storage->save(key, value);
    else if (!dir.empty())
        saveToDir(key, value);
}

std::uint64_t
ResultCache::hits() const
{
    MutexLock lock(mutex);
    return numHits;
}

std::uint64_t
ResultCache::misses() const
{
    MutexLock lock(mutex);
    return numMisses;
}

std::uint64_t
ResultCache::corruptEntries() const
{
    MutexLock lock(mutex);
    return numCorrupt;
}

std::size_t
ResultCache::size() const
{
    MutexLock lock(mutex);
    return entries.size();
}

std::string
ResultCache::serialize(const CachedResult &value)
{
    std::ostringstream out;
    // v3 extends the config digest with the vault-backend id and its
    // parameters ("hmcsim.experiment.v2"); bumping the header turns
    // every pre-backend v2 entry on disk into a clean cache miss
    // (re-simulated, then rewritten in v3). v2 added
    // readLatencyP999Ns over v1. The distributed shared store writes
    // the same field body under a v4 header (dist/store.cc).
    out << "hmcsim-result v3\n";
    out << serializeResultFields(value);
    return out.str();
}

std::optional<CachedResult>
ResultCache::deserialize(const std::string &text)
{
    std::istringstream in(text);
    std::string header;
    if (!std::getline(in, header) || header != "hmcsim-result v3")
        return std::nullopt;

    CachedResult value;
    if (!parseResultFields(in, value))
        return std::nullopt;
    return value;
}

} // namespace hmcsim
