/**
 * @file
 * Structured result sinks for sweep campaigns.
 *
 * A sink receives one SweepPointResult per sweep point, in canonical
 * axis order, after the whole sweep completed -- never from worker
 * threads and never in completion order. That makes sink output a
 * pure function of the sweep definition: a JSONL file written at
 * --jobs 8 diffs clean against one written at --jobs 1 (the CI smoke
 * job does exactly this).
 *
 * Timing metadata (wall clock, cache provenance) is inherently
 * nondeterministic, so it is opt-in per sink and excluded from the
 * determinism contract.
 */

#ifndef HMCSIM_RUNNER_SINK_HH
#define HMCSIM_RUNNER_SINK_HH

#include <cstdint>
#include <ostream>

#include "host/experiment.hh"

namespace hmcsim
{

/** One completed sweep point, as handed to sinks. */
struct SweepPointResult
{
    /** Position in canonical axis order. */
    std::size_t index = 0;
    /** Configuration actually simulated (derived seed included). */
    ExperimentConfig config;
    /** configDigest(config): the cache key / join key. */
    std::uint64_t digest = 0;
    /** StatRegistry::digest() of the producing run. */
    std::uint64_t statDigest = 0;
    MeasurementResult result;
    /** True when served from the result cache instead of simulated. */
    bool fromCache = false;
    /** Host wall-clock cost of this point (0 on a cache hit). */
    double wallMs = 0.0;
    /** Comma-prefixed Chrome trace-event fragments of this point's
     *  sampled lifecycles (empty unless the sweep traced); join in
     *  canonical order and wrap with writeChromeTrace(). */
    std::string traceJson;
};

/** Destination for sweep results. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Called once per point, in canonical order. */
    virtual void write(const SweepPointResult &point) = 0;

    /** Called after the last write(). */
    virtual void finish() {}
};

/**
 * JSON-lines sink: one self-describing object per point with the
 * config digest, the axis coordinates, every result field, and
 * (opt-in) timing metadata. Doubles are printed with 17 significant
 * digits so the text round-trips bit-exactly.
 */
class JsonLinesSink : public ResultSink
{
  public:
    explicit JsonLinesSink(std::ostream &out, bool include_timing = false)
        : out(out), includeTiming(include_timing)
    {
    }

    /**
     * Streaming mode: flush after every line instead of only at
     * finish(). The serve subcommand turns this on so a client
     * reading the pipe sees each result as soon as it is written;
     * batch sweeps leave it off (one flush at the end is cheaper and
     * the bytes are identical either way).
     */
    void setStreaming(bool on) { streaming = on; }

    void write(const SweepPointResult &point) override;
    void finish() override;

  private:
    std::ostream &out;
    bool includeTiming;
    bool streaming = false;
};

/** CSV sink: header row, then one flat row per point. */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::ostream &out, bool include_timing = false)
        : out(out), includeTiming(include_timing)
    {
    }

    void write(const SweepPointResult &point) override;
    void finish() override;

  private:
    std::ostream &out;
    bool includeTiming;
    bool wroteHeader = false;
};

} // namespace hmcsim

#endif // HMCSIM_RUNNER_SINK_HH
