#include "runner/sink.hh"

#include <cstdio>

#include "mem/backend.hh"

namespace hmcsim
{

namespace
{

/** Shortest round-trippable decimal form of a double. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtHex64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Minimal JSON string escape (names are ASCII identifiers here). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

void
JsonLinesSink::write(const SweepPointResult &p)
{
    const MeasurementResult &m = p.result;
    out << "{\"digest\":\"" << fmtHex64(p.digest) << "\""
        << ",\"pattern\":\"" << jsonEscape(m.patternName) << "\""
        << ",\"mix\":\"" << requestMixName(m.mix) << "\""
        << ",\"size\":" << m.requestSize
        << ",\"mode\":\"" << addressingModeName(p.config.mode) << "\""
        << ",\"ports\":" << p.config.numPorts
        << ",\"backend\":\""
        << backendName(p.config.device.vault.backend.kind) << "\""
        << ",\"seed\":" << p.config.seed
        << ",\"raw_gbps\":" << fmtDouble(m.rawGBps)
        << ",\"mrps\":" << fmtDouble(m.mrps)
        << ",\"read_mrps\":" << fmtDouble(m.readMrps)
        << ",\"write_mrps\":" << fmtDouble(m.writeMrps)
        << ",\"read_payload_gbps\":" << fmtDouble(m.readPayloadGBps)
        << ",\"write_payload_gbps\":" << fmtDouble(m.writePayloadGBps)
        << ",\"read_lat_avg_ns\":" << fmtDouble(m.readLatencyNs.mean())
        << ",\"read_lat_min_ns\":" << fmtDouble(m.readLatencyNs.min())
        << ",\"read_lat_max_ns\":" << fmtDouble(m.readLatencyNs.max())
        << ",\"read_lat_count\":" << m.readLatencyNs.count()
        << ",\"write_lat_avg_ns\":" << fmtDouble(m.writeLatencyNs.mean())
        << ",\"read_lat_p50_ns\":" << fmtDouble(m.readLatencyP50Ns)
        << ",\"read_lat_p99_ns\":" << fmtDouble(m.readLatencyP99Ns);
    // Per-stage breakdown columns: all zero unless the sweep traced.
    for (unsigned i = 0; i < numLifecycleStages; ++i) {
        out << ",\"stage_"
            << lifecycleStageName(static_cast<LifecycleStage>(i))
            << "_avg_ns\":" << fmtDouble(m.stages.stageNs[i].mean());
    }
    out << ",\"stat_digest\":\"" << fmtHex64(p.statDigest) << "\"";
    if (includeTiming) {
        out << ",\"wall_ms\":" << fmtDouble(p.wallMs)
            << ",\"from_cache\":" << (p.fromCache ? "true" : "false");
    }
    out << "}\n";
    if (streaming)
        out.flush();
}

void
JsonLinesSink::finish()
{
    out.flush();
}

void
CsvSink::write(const SweepPointResult &p)
{
    if (!wroteHeader) {
        out << "digest,pattern,mix,size,mode,ports,backend,seed,"
               "raw_gbps,mrps,"
               "read_mrps,write_mrps,read_payload_gbps,"
               "write_payload_gbps,read_lat_avg_ns,read_lat_min_ns,"
               "read_lat_max_ns,read_lat_count,write_lat_avg_ns,"
               "read_lat_p50_ns,read_lat_p99_ns";
        for (unsigned i = 0; i < numLifecycleStages; ++i)
            out << ",stage_"
                << lifecycleStageName(static_cast<LifecycleStage>(i))
                << "_avg_ns";
        out << ",stat_digest";
        if (includeTiming)
            out << ",wall_ms,from_cache";
        out << '\n';
        wroteHeader = true;
    }
    const MeasurementResult &m = p.result;
    // Pattern names contain spaces but never commas or quotes.
    out << fmtHex64(p.digest) << ',' << m.patternName << ','
        << requestMixName(m.mix) << ',' << m.requestSize << ','
        << addressingModeName(p.config.mode) << ','
        << p.config.numPorts << ','
        << backendName(p.config.device.vault.backend.kind) << ','
        << p.config.seed << ','
        << fmtDouble(m.rawGBps) << ',' << fmtDouble(m.mrps) << ','
        << fmtDouble(m.readMrps) << ',' << fmtDouble(m.writeMrps) << ','
        << fmtDouble(m.readPayloadGBps) << ','
        << fmtDouble(m.writePayloadGBps) << ','
        << fmtDouble(m.readLatencyNs.mean()) << ','
        << fmtDouble(m.readLatencyNs.min()) << ','
        << fmtDouble(m.readLatencyNs.max()) << ','
        << m.readLatencyNs.count() << ','
        << fmtDouble(m.writeLatencyNs.mean()) << ','
        << fmtDouble(m.readLatencyP50Ns) << ','
        << fmtDouble(m.readLatencyP99Ns);
    for (unsigned i = 0; i < numLifecycleStages; ++i)
        out << ',' << fmtDouble(m.stages.stageNs[i].mean());
    out << ',' << fmtHex64(p.statDigest);
    if (includeTiming)
        out << ',' << fmtDouble(p.wallMs) << ','
            << (p.fromCache ? 1 : 0);
    out << '\n';
}

void
CsvSink::finish()
{
    out.flush();
}

} // namespace hmcsim
