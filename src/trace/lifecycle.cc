#include "trace/lifecycle.hh"

#include "sim/check.hh"
#include "sim/random.hh"

namespace hmcsim
{

namespace
{

/** Histogram binning shared by every stage: 100 ns bins to 100 us.
 *  Round trips in the modeled system sit well inside this range
 *  (Fig. 15: ~0.6-1.5 us); overflow saturates, so a pathological
 *  configuration still digests deterministically. */
constexpr double histLoNs = 0.0;
constexpr double histHiNs = 100000.0;
constexpr std::size_t histBins = 1000;

} // namespace

const char *
lifecycleStageName(LifecycleStage stage)
{
    switch (stage) {
      case LifecycleStage::CtrlTx:
        return "ctrl_tx";
      case LifecycleStage::Link:
        return "link";
      case LifecycleStage::VaultQueue:
        return "vault_queue";
      case LifecycleStage::Bank:
        return "bank";
      case LifecycleStage::Response:
        return "response";
    }
    return "?";
}

std::array<StageSpan, numLifecycleStages>
lifecycleSpans(const Packet &pkt)
{
    // A thermally refused packet is bounced before the bank: charge
    // the whole in-cube path to VaultQueue and give Bank zero length
    // so the spans still telescope.
    const Tick bank_start = pkt.tBankStart ? pkt.tBankStart
                                           : pkt.tDramDone;
    return {
        StageSpan{pkt.tIssued, pkt.tLinkTx},
        StageSpan{pkt.tLinkTx, pkt.tVaultArrive},
        StageSpan{pkt.tVaultArrive, bank_start},
        StageSpan{bank_start, pkt.tDramDone},
        StageSpan{pkt.tDramDone, pkt.tResponse},
    };
}

double
StageBreakdown::stageMeanSumNs() const
{
    double sum = 0.0;
    for (const SampleStats &s : stageNs)
        sum += s.mean();
    return sum;
}

PacketTracer::PacketTracer(const TraceConfig &cfg)
    : cfg(cfg),
      hist{Histogram(histLoNs, histHiNs, histBins),
           Histogram(histLoNs, histHiNs, histBins),
           Histogram(histLoNs, histHiNs, histBins),
           Histogram(histLoNs, histHiNs, histBins),
           Histogram(histLoNs, histHiNs, histBins)}
{
    agg.enabled = true;
}

bool
PacketTracer::sampled(std::uint64_t id, std::uint64_t period)
{
    if (period == 0)
        return false;
    if (period == 1)
        return true;
    // Hash the id: port-sharded ids (port << 48 | seq) would alias a
    // power-of-two period onto one port if taken modulo directly.
    std::uint64_t state = id;
    return splitMix64(state) % period == 0;
}

void
PacketTracer::record(const Packet &pkt)
{
    HMCSIM_DCHECK(pkt.tResponse >= pkt.tIssued,
                  "tracer fed an incomplete packet");
    const auto spans = lifecycleSpans(pkt);
    for (unsigned i = 0; i < numLifecycleStages; ++i) {
        const double ns = ticksToNs(spans[i].duration());
        agg.stageNs[i].sample(ns);
        hist[i].sample(ns);
    }
    agg.endToEndNs.sample(ticksToNs(pkt.tResponse - pkt.tIssued));
    ++numRecorded;
    if (cfg.sink && sampled(pkt.id, cfg.samplePeriod))
        cfg.sink->packet(pkt);
}

void
PacketTracer::resetStats()
{
    for (SampleStats &s : agg.stageNs)
        s.reset();
    agg.endToEndNs.reset();
    for (Histogram &h : hist)
        h.reset();
    numRecorded = 0;
    if (cfg.sink)
        cfg.sink->reset();
}

const Histogram &
PacketTracer::stageHistogram(LifecycleStage s) const
{
    return hist[static_cast<unsigned>(s)];
}

void
PacketTracer::registerStats(StatRegistry &registry,
                            const StatPath &path) const
{
    registry.add((path / "recorded").str(),
                 "completed packet lifecycles recorded",
                 [this] { return static_cast<double>(numRecorded); });
    registry.add((path / "end_to_end" / "avg_ns").str(),
                 "mean end-to-end round trip of recorded packets",
                 [this] { return agg.endToEndNs.mean(); });
    registry.add((path / "end_to_end" / "max_ns").str(),
                 "max end-to-end round trip of recorded packets",
                 [this] { return agg.endToEndNs.max(); });
    for (unsigned i = 0; i < numLifecycleStages; ++i) {
        const auto stage = static_cast<LifecycleStage>(i);
        const StatPath sp = path / lifecycleStageName(stage);
        const SampleStats *stats = &agg.stageNs[i];
        const Histogram *h = &hist[i];
        registry.add((sp / "count").str(),
                     "samples recorded for this stage",
                     [stats] {
                         return static_cast<double>(stats->count());
                     });
        registry.add((sp / "sum_ns").str(),
                     "total time spent in this stage",
                     [stats] { return stats->sum(); });
        registry.add((sp / "avg_ns").str(),
                     "mean per-packet time in this stage",
                     [stats] { return stats->mean(); });
        registry.add((sp / "max_ns").str(),
                     "max per-packet time in this stage",
                     [stats] { return stats->max(); });
        registry.add((sp / "p50_ns").str(),
                     "median per-packet time in this stage",
                     [h] { return h->quantile(0.50); });
        registry.add((sp / "p99_ns").str(),
                     "99th-percentile per-packet time in this stage",
                     [h] { return h->quantile(0.99); });
    }
}

} // namespace hmcsim
