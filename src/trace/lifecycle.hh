/**
 * @file
 * Packet-lifecycle stage decomposition (Figs. 14-15, Sec. IV-E).
 *
 * The paper's core analytical move is splitting an end-to-end HMC
 * round trip into its structural stages: FPGA controller TX pipeline,
 * SerDes/link traversal, vault queueing, closed-page DRAM bank access,
 * and the response path. The simulator stamps every packet with
 * per-stage ticks as it moves through the model (protocol/packet.hh
 * timestamp fields); this header turns those stamps into named stage
 * spans, aggregates them (sample statistics + latency histograms) and
 * exposes the aggregate through the StatRegistry so the breakdown is
 * covered by the determinism digest.
 *
 * The stages telescope: consecutive spans share their boundary stamp,
 * so the per-stage durations sum to the end-to-end round trip
 * *exactly* (tested in tests/test_tracing.cc). That property is what
 * makes the breakdown trustworthy as an explanation of where latency
 * comes from rather than a second, independent estimate.
 */

#ifndef HMCSIM_TRACE_LIFECYCLE_HH
#define HMCSIM_TRACE_LIFECYCLE_HH

#include <array>
#include <cstdint>

#include "protocol/packet.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace_sink.hh"

namespace hmcsim
{

/** The five structural stages of one transaction's lifecycle. */
enum class LifecycleStage : unsigned
{
    /** Port submit -> first bit on the TX wire: the fixed FPGA TX
     *  pipeline (Fig. 14 stages 2-8) plus any flow-control stall. */
    CtrlTx = 0,
    /** TX wire serialization + propagation until the last request
     *  flit arrives at the cube. */
    Link,
    /** Cube ingress -> DRAM bank command start: quadrant routing,
     *  vault controller pipeline, and waiting for a busy bank. */
    VaultQueue,
    /** DRAM array access plus the TSV data-bus transfer. */
    Bank,
    /** Response crossbar + RX wire + FPGA RX pipeline until the
     *  response is delivered back to the issuing port. */
    Response,
};

/** Number of lifecycle stages (size of per-stage arrays). */
constexpr unsigned numLifecycleStages = 5;

/** Short machine-readable stage name ("ctrl_tx", "link", ...). */
const char *lifecycleStageName(LifecycleStage stage);

/** One stage's [begin, end) span in ticks. */
struct StageSpan
{
    Tick begin = 0;
    Tick end = 0;

    Tick duration() const { return end - begin; }
};

/**
 * Decompose a *completed* packet (tResponse stamped) into its five
 * stage spans. Consecutive spans share boundaries, so the durations
 * telescope to tResponse - tIssued exactly. A packet refused by a
 * cube in thermal shutdown never reaches a bank; its Bank span
 * collapses to zero length and the refusal path is charged to
 * VaultQueue.
 */
std::array<StageSpan, numLifecycleStages>
lifecycleSpans(const Packet &pkt);

/**
 * Aggregated per-stage latency statistics in nanoseconds, as exported
 * in MeasurementResult. Empty (all counts zero, enabled false) when
 * tracing was off for the producing run.
 */
struct StageBreakdown
{
    /** One accumulator per LifecycleStage, indexed by the enum. */
    std::array<SampleStats, numLifecycleStages> stageNs;
    /** End-to-end round trips of the same packets. */
    SampleStats endToEndNs;
    /** True when a tracer produced this breakdown. */
    bool enabled = false;

    const SampleStats &
    stage(LifecycleStage s) const
    {
        return stageNs[static_cast<unsigned>(s)];
    }

    /** Sum of the stage means; equals endToEndNs.mean() when every
     *  recorded packet contributed to every stage (telescoping). */
    double stageMeanSumNs() const;
};

/** Tracing knobs for one run. */
struct TraceConfig
{
    /** Master switch. Off = the null fast path: no tracer object is
     *  attached to the system and the per-response cost is one
     *  untaken branch (bench_trace_overhead guards this). */
    bool enabled = false;
    /**
     * Emit every sampled packet's lifecycle to @p sink. Sampling is
     * deterministic -- keyed off a hash of the packet id, never off
     * wall clock or completion order -- so two runs of the same
     * configuration stream identical events. 1 = every packet,
     * N = roughly one in N, 0 = aggregate only (no event stream).
     */
    std::uint64_t samplePeriod = 1;
    /** Event-stream destination; may be null (aggregate only). Not
     *  owned; must outlive the tracer. */
    PacketTraceSink *sink = nullptr;
};

/**
 * The lifecycle tracer: one per simulated system (same threading
 * contract as Ac510Module -- single-thread, not shared). Attached via
 * Ac510Config::tracer; every port reports each completed packet to
 * record().
 */
class PacketTracer
{
  public:
    explicit PacketTracer(const TraceConfig &cfg);

    /** Record a completed packet: aggregate its stage spans and, when
     *  it is sampled, forward it to the event sink. */
    void record(const Packet &pkt);

    /** Clear aggregates and the sink (end of warm-up). */
    void resetStats();

    /** Aggregated breakdown of everything recorded since the last
     *  resetStats(). */
    const StageBreakdown &breakdown() const { return agg; }

    /** Per-stage latency distribution (100 ns bins up to 100 us). */
    const Histogram &stageHistogram(LifecycleStage s) const;

    /** Lifecycles recorded since the last resetStats(). */
    std::uint64_t recorded() const { return numRecorded; }

    /**
     * Register the breakdown under @p path: per-stage count / sum /
     * avg / max plus histogram p50/p99. Flows into
     * StatRegistry::digest(), so an enabled tracer is covered by the
     * determinism self-check. The tracer must outlive the registry.
     */
    void registerStats(StatRegistry &registry, const StatPath &path) const;

    /** Deterministic sampling predicate: true when the packet with
     *  @p id is emitted at 1-in-@p period sampling. */
    static bool sampled(std::uint64_t id, std::uint64_t period);

  private:
    TraceConfig cfg;
    StageBreakdown agg;
    std::array<Histogram, numLifecycleStages> hist;
    std::uint64_t numRecorded = 0;
};

} // namespace hmcsim

#endif // HMCSIM_TRACE_LIFECYCLE_HH
