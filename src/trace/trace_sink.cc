#include "trace/trace_sink.hh"

#include <cinttypes>
#include <cstdio>

#include "trace/lifecycle.hh"

namespace hmcsim
{

namespace
{

/**
 * Render ticks (integer picoseconds) as a decimal-microsecond JSON
 * number using only integer arithmetic, so the formatted trace is
 * byte-identical across runs, platforms, and job counts. Chrome's
 * "ts"/"dur" fields are microseconds.
 */
void
appendUs(std::string &out, Tick ticks)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                  ticks / tickUs, ticks % tickUs);
    out += buf;
}

} // namespace

void
ChromeTraceBuffer::packet(const Packet &pkt)
{
    // One "X" (complete) slice per lifecycle stage: pid = issuing
    // port, tid = stage index, so Perfetto shows one track per stage
    // under one process per port.
    const auto spans = lifecycleSpans(pkt);
    char head[256];
    for (unsigned i = 0; i < numLifecycleStages; ++i) {
        const auto stage = static_cast<LifecycleStage>(i);
        std::snprintf(head, sizeof(head),
                      ",\n{\"name\":\"%s\",\"cat\":\"lifecycle\","
                      "\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":",
                      lifecycleStageName(stage),
                      static_cast<unsigned>(pkt.port), i);
        buf += head;
        appendUs(buf, spans[i].begin);
        buf += ",\"dur\":";
        appendUs(buf, spans[i].duration());
        std::snprintf(head, sizeof(head),
                      ",\"args\":{\"id\":%" PRIu64 ",\"cmd\":\"%s\","
                      "\"addr\":%" PRIu64
                      ",\"vault\":%u,\"bank\":%u}}",
                      pkt.id, commandName(pkt.cmd), pkt.addr,
                      static_cast<unsigned>(pkt.vault),
                      static_cast<unsigned>(pkt.bank));
        buf += head;
    }
}

std::string
ChromeTraceBuffer::takeEvents()
{
    std::string out = std::move(buf);
    buf.clear();
    return out;
}

void
writeChromeTrace(std::ostream &os, const std::string &events)
{
    // The leading metadata event lets every following fragment carry
    // an unconditional comma prefix, which keeps concatenation of
    // per-sweep-point buffers a pure string join.
    os << "{\"traceEvents\":[\n"
       << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"hmcsim\"}}"
       << events << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

} // namespace hmcsim
