/**
 * @file
 * Event-stream sinks for sampled packet lifecycles.
 *
 * The aggregate breakdown (lifecycle.hh) answers "where does latency
 * go on average"; the event stream answers "what happened to *this*
 * packet". ChromeTraceBuffer renders sampled lifecycles in the Chrome
 * trace-event JSON format, which Perfetto (ui.perfetto.dev) and
 * chrome://tracing both load directly: one track per lifecycle stage,
 * one slice per packet per stage (docs/observability.md).
 *
 * Formatting is fully deterministic -- timestamps are derived from
 * simulated ticks with integer arithmetic, never from the wall clock
 * -- so two runs of the same configuration produce byte-identical
 * buffers. The parallel sweep runner relies on this to keep traced
 * sweeps bit-identical across --jobs counts.
 */

#ifndef HMCSIM_TRACE_TRACE_SINK_HH
#define HMCSIM_TRACE_TRACE_SINK_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "protocol/packet.hh"

namespace hmcsim
{

/**
 * Destination for sampled packet lifecycles. Implementations receive
 * only completed packets (every timestamp stamped). Same threading
 * contract as the simulator: one sink per system, no sharing.
 */
class PacketTraceSink
{
  public:
    virtual ~PacketTraceSink() = default;

    /** One sampled, completed packet. */
    virtual void packet(const Packet &pkt) = 0;

    /** Discard everything buffered so far (end of warm-up). */
    virtual void reset() {}
};

/**
 * Chrome trace-event buffer: accumulates one comma-prefixed "X"
 * (complete) event per lifecycle stage per sampled packet. The
 * fragment string is not itself a JSON document; wrap it (or a
 * canonical-order concatenation of several buffers' fragments) with
 * writeChromeTrace() to produce one.
 */
class ChromeTraceBuffer final : public PacketTraceSink
{
  public:
    void packet(const Packet &pkt) override;
    void reset() override { buf.clear(); }

    /** Accumulated comma-prefixed event fragments. */
    const std::string &events() const { return buf; }

    /** Move the fragments out (leaves the buffer empty). */
    std::string takeEvents();

  private:
    std::string buf;
};

/**
 * Wrap comma-prefixed event fragments into a complete Chrome
 * trace-event JSON document:
 *   {"traceEvents":[{metadata event}<events>]}
 * @p events may be empty or a concatenation of several buffers'
 * fragments (e.g. the sweep runner joining per-point buffers in
 * canonical point order).
 */
void writeChromeTrace(std::ostream &os, const std::string &events);

} // namespace hmcsim

#endif // HMCSIM_TRACE_TRACE_SINK_HH
