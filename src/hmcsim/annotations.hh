/**
 * @file
 * Clang thread-safety (capability) annotations and annotated lock
 * primitives.
 *
 * The platform's concurrency contract -- parallel sweeps bit-identical
 * to serial, no data races under any --jobs count -- is enforced at
 * runtime by TSan and the determinism self-check. This header moves
 * the lock-discipline half of that contract to compile time: every
 * shared-state surface (ThreadPool queues, ResultCache, the logging
 * sink) declares which mutex guards which member, and Clang's
 * -Wthread-safety analysis rejects any access that does not hold the
 * right capability. Build with -DHMCSIM_THREAD_SAFETY=ON under Clang
 * (the CI `thread-safety` job does); every other compiler sees
 * no-op macros and identical codegen.
 *
 * Use the wrapped primitives, not raw std::mutex, for any mutex the
 * analysis should track: libstdc++'s std::mutex/std::lock_guard carry
 * no capability attributes, so the analysis cannot see their
 * acquire/release. hmcsim::Mutex and hmcsim::MutexLock are inline
 * zero-cost forwarders with the attributes attached.
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 * (the macro set below follows the names proposed there).
 */

#ifndef HMCSIM_HMCSIM_ANNOTATIONS_HH
#define HMCSIM_HMCSIM_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define HMCSIM_TSA(x) __attribute__((x))
#else
#define HMCSIM_TSA(x) // no-op off Clang
#endif

/** Type is a lockable capability (mutexes, roles). */
#define CAPABILITY(x) HMCSIM_TSA(capability(x))

/** RAII type that acquires in its ctor and releases in its dtor. */
#define SCOPED_CAPABILITY HMCSIM_TSA(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define GUARDED_BY(x) HMCSIM_TSA(guarded_by(x))

/** Pointed-to data guarded by @p x (the pointer itself is not). */
#define PT_GUARDED_BY(x) HMCSIM_TSA(pt_guarded_by(x))

/** Caller must hold the listed capabilities exclusively. */
#define REQUIRES(...) HMCSIM_TSA(requires_capability(__VA_ARGS__))

/** Caller must hold the listed capabilities at least shared. */
#define REQUIRES_SHARED(...)                                              \
    HMCSIM_TSA(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and does not release it. */
#define ACQUIRE(...) HMCSIM_TSA(acquire_capability(__VA_ARGS__))

/** Function releases the capability (must be held on entry). */
#define RELEASE(...) HMCSIM_TSA(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p ret. */
#define TRY_ACQUIRE(ret, ...)                                             \
    HMCSIM_TSA(try_acquire_capability(ret, __VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define EXCLUDES(...) HMCSIM_TSA(locks_excluded(__VA_ARGS__))

/** Declares that the capability is held (runtime-checked claims). */
#define ASSERT_CAPABILITY(x) HMCSIM_TSA(assert_capability(x))

/** Function returns a reference to the given capability. */
#define RETURN_CAPABILITY(x) HMCSIM_TSA(lock_returned(x))

/** Escape hatch: disable the analysis for one function. */
#define NO_THREAD_SAFETY_ANALYSIS HMCSIM_TSA(no_thread_safety_analysis)

namespace hmcsim
{

/**
 * std::mutex with capability attributes: same cost (the calls are
 * inline forwarders), but Clang can prove which members each lock
 * protects. Use with MutexLock and GUARDED_BY.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { m.lock(); }
    void unlock() RELEASE() { m.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return m.try_lock(); }

  private:
    /** The wrapped lock itself is the capability; there is no member
     *  to annotate against it. */
    std::mutex m; // lint:allow(mutex-unguarded)
};

/**
 * RAII guard over Mutex (the std::lock_guard shape, annotated). The
 * pattern follows the scoped-capability example in the Clang docs:
 * the constructor is annotated ACQUIRE and performs the lock, the
 * destructor is annotated RELEASE.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : m(mutex)
    {
        m.lock();
    }

    ~MutexLock() RELEASE() { m.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m;
};

/**
 * Condition variable usable with hmcsim::Mutex. Built on
 * std::condition_variable_any, which accepts any BasicLockable --
 * only ever used on sleep/wake paths (the ThreadPool idle loop),
 * where the small constant overhead over std::condition_variable is
 * irrelevant.
 */
class CondVar
{
  public:
    /**
     * Atomically release @p mutex, sleep until @p pred holds, and
     * reacquire. Caller must hold @p mutex (checked by the analysis).
     */
    template <typename Pred>
    void
    wait(Mutex &mutex, Pred pred) REQUIRES(mutex)
    {
        cv.wait(mutex, pred);
    }

    void notify_one() { cv.notify_one(); }
    void notify_all() { cv.notify_all(); }

  private:
    std::condition_variable_any cv;
};

} // namespace hmcsim

#endif // HMCSIM_HMCSIM_ANNOTATIONS_HH
