#include "gups/patterns.hh"

#include <bit>

#include "sim/logging.hh"

namespace hmcsim
{

namespace
{

/** Count reachable vaults/banks under a zero-forcing mask. */
void
fillSpans(const AddressMapper &mapper, AccessPattern &pattern)
{
    const Addr vault_field =
        bitRangeMask(mapper.vaultShift(),
                     mapper.vaultShift() + mapper.vaultBits() - 1);
    const Addr bank_field =
        bitRangeMask(mapper.bankShift(),
                     mapper.bankShift() + mapper.bankBits() - 1);
    const unsigned free_vault_bits =
        mapper.vaultBits() -
        static_cast<unsigned>(std::popcount(pattern.mask & vault_field));
    const unsigned free_bank_bits =
        mapper.bankBits() -
        static_cast<unsigned>(std::popcount(pattern.mask & bank_field));
    pattern.vaultSpan = 1u << free_vault_bits;
    pattern.bankSpan = pattern.vaultSpan * (1u << free_bank_bits);
}

unsigned
log2Pow2(unsigned v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal("%s must be a power of two (got %u)", what, v);
    return static_cast<unsigned>(std::countr_zero(v));
}

} // namespace

AccessPattern
bankPattern(const AddressMapper &mapper, unsigned num_banks)
{
    const unsigned free_bits = log2Pow2(num_banks, "bank count");
    if (free_bits > mapper.bankBits())
        fatal("bank pattern larger than a vault");

    AccessPattern p;
    p.name = num_banks == 1 ? "1 bank" : std::to_string(num_banks) +
                                             " banks";
    // All vault-select bits to zero: stay in vault 0.
    p.mask = bitRangeMask(mapper.vaultShift(),
                          mapper.vaultShift() + mapper.vaultBits() - 1);
    // Zero the bank bits above the allowed range.
    if (free_bits < mapper.bankBits()) {
        p.mask |= bitRangeMask(mapper.bankShift() + free_bits,
                               mapper.bankShift() + mapper.bankBits() - 1);
    }
    fillSpans(mapper, p);
    return p;
}

AccessPattern
vaultPattern(const AddressMapper &mapper, unsigned num_vaults)
{
    const unsigned free_bits = log2Pow2(num_vaults, "vault count");
    if (free_bits > mapper.vaultBits())
        fatal("vault pattern larger than the device");

    AccessPattern p;
    p.name = num_vaults == 1 ? "1 vault" : std::to_string(num_vaults) +
                                               " vaults";
    if (free_bits < mapper.vaultBits()) {
        p.mask = bitRangeMask(mapper.vaultShift() + free_bits,
                              mapper.vaultShift() + mapper.vaultBits() - 1);
    }
    fillSpans(mapper, p);
    return p;
}

std::vector<AccessPattern>
paperPatternAxis(const AddressMapper &mapper)
{
    std::vector<AccessPattern> axis;
    for (unsigned v = mapper.vaultBits() ? 1u << mapper.vaultBits() : 1;
         v >= 2; v /= 2) {
        axis.push_back(vaultPattern(mapper, v));
    }
    axis.push_back(vaultPattern(mapper, 1)); // "1 vault": all banks.
    for (unsigned b = (1u << mapper.bankBits()) / 2; b >= 1; b /= 2)
        axis.push_back(bankPattern(mapper, b));
    return axis;
}

std::vector<AccessPattern>
fig6MaskSweep(const AddressMapper &mapper)
{
    std::vector<AccessPattern> sweep;
    for (unsigned lo : {24u, 10u, 7u, 3u, 2u, 1u, 0u}) {
        AccessPattern p;
        p.name = std::to_string(lo) + "-" + std::to_string(lo + 7);
        p.mask = bitRangeMask(lo, lo + 7);
        fillSpans(mapper, p);
        sweep.push_back(p);
    }
    return sweep;
}

} // namespace hmcsim
