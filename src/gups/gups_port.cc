// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
#include "gups/gups_port.hh"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "trace/lifecycle.hh"

namespace hmcsim
{

GupsPort::GupsPort(unsigned id, const GupsPortConfig &cfg, Bytes capacity,
                   EventQueue &queue, SubmitFn submit, std::uint64_t seed)
    : portId(id),
      cfg(cfg),
      queue(queue),
      submit(std::move(submit)),
      addrGen(
          AddressGeneratorConfig{
              cfg.mode,
              cfg.requestSize,
              capacity,
              cfg.mask,
              cfg.antiMask,
              // Stagger linear streams: each port works a different
              // region, 4 KB aligned, like independent array slices.
              cfg.staggerLinearStarts
                  ? (capacity / gupsPortCount) * id & ~Addr(4095)
                  : 0,
          },
          seed * 0x9E3779B97F4A7C15ULL + id + 1),
      tags(cfg.tagPoolDepth),
      writeCredits(cfg.writeCreditDepth),
      // Distinct id space per port so packet ids never collide.
      nextPacketId(static_cast<std::uint64_t>(id) << 48)
{
    // On the AC-510's two links, ports 0-4 feed link 0 and 5-8 link 1
    // (five TX_ports per hmc_node, Fig. 14); with more links, ports
    // spread round-robin.
    if (cfg.numLinks == 2) {
        linkId = portId < 5 ? 0 : 1;
    } else {
        linkId = static_cast<std::uint8_t>(
            portId % (cfg.numLinks ? cfg.numLinks : 1));
    }

    // Per-completion byte costs are fixed by the port's mix: tagged
    // requests are all Reads (payload = requestSize) or all Atomics
    // (16 B immediate operand), never both.
    const bool atomic = cfg.mix == RequestMix::Atomic;
    readPayload = atomic ? 16 : cfg.requestSize;
    readTransactionBytes = transactionBytes(
        atomic ? Command::Atomic : Command::Read, readPayload);
    writePayload = cfg.requestSize;
    writeTransactionBytes =
        transactionBytes(Command::Write, writePayload);

    // Open loop: per-tag arrival stamps so each completion can report
    // its sojourn (gups/arrival_feed.hh).
    if (cfg.arrivals)
        arrivalByTag.assign(cfg.tagPoolDepth, 0);
}

void
GupsPort::start()
{
    running = true;
    scheduleIssue();
}

void
GupsPort::stop()
{
    running = false;
}

Packet
GupsPort::makePacket(Command cmd, Addr addr)
{
    Packet pkt;
    pkt.id = nextPacketId++;
    pkt.cmd = cmd;
    pkt.addr = addr;
    pkt.payload = cfg.requestSize;
    pkt.port = static_cast<std::uint8_t>(portId);
    pkt.link = linkId;
    pkt.tIssued = queue.now();
    return pkt;
}

void
GupsPort::scheduleIssue()
{
    scheduleIssueAt(queue.now());
}

void
GupsPort::scheduleIssueAt(Tick earliest)
{
    // A stopped port generates nothing new, but dependent rw writes
    // whose reads already returned must still retire.
    if (issuePending || (!running && pendingRmwWrites.empty()))
        return;
    issuePending = true;
    const Tick when =
        nextIssueAllowed > earliest ? nextIssueAllowed : earliest;
    queue.schedule(when, IssueEvent{this});
}

void
GupsPort::IssueEvent::relocate(const SnapshotFixup &fixup)
{
    self = fixup.translate(self);
}

void
GupsPort::restoreFrom(const GupsPort &src, SnapshotFixup &fixup)
{
    fixup.mapObject(&src, this);
    addrGen = src.addrGen;
    tags = src.tags;
    writeCredits = src.writeCredits;
    outstandingReads = src.outstandingReads;
    outstandingWrites = src.outstandingWrites;
    pendingRmwWrites = src.pendingRmwWrites;
    running = src.running;
    issuePending = src.issuePending;
    nextIssueAllowed = src.nextIssueAllowed;
    generatedOps = src.generatedOps;
    nextPacketId = src.nextPacketId;
    std::copy(std::begin(src.addrWindow), std::end(src.addrWindow),
              std::begin(addrWindow));
    addrWindowPos = src.addrWindowPos;
    arrivalByTag = src.arrivalByTag;
    // Raw batch copy, deliberately not a flush: flushing would mutate
    // the (shared, possibly concurrently forked) source.
    readBatch = src.readBatch;
    writeBatch = src.writeBatch;
    _stats = src._stats;
}

void
GupsPort::issueOne()
{
    issuePending = false;
    if (!running && pendingRmwWrites.empty())
        return;

    bool issued = false;

    // Arbitration: dependent rw writes go first (the hardware must
    // retire them to free the write FIFO), then fresh operations.
    if (!pendingRmwWrites.empty() && writeCredits > 0) {
        const Addr addr = pendingRmwWrites.front();
        pendingRmwWrites.pop_front();
        --writeCredits;
        ++outstandingWrites;
        ++_stats.writesIssued;
        Packet pkt = makePacket(Command::Write, addr);
        submit(std::move(pkt));
        issued = true;
    } else if (running && cfg.arrivals) {
        // Open loop: admit the next scheduled arrival, if due. The
        // tag pool still gates admission -- a burst that outruns the
        // cube queues right here, and that wait is exactly the
        // sojourn-vs-service-latency gap the fleet layer measures
        // (src/service/).
        const Tick arrival = cfg.arrivals->peekArrival();
        if (arrival <= queue.now()) {
            if (tags.available()) {
                Packet pkt = makePacket(Command::Read, nextAddress());
                pkt.tag = tags.allocate();
                arrivalByTag[pkt.tag] = arrival;
                cfg.arrivals->pop();
                ++outstandingReads;
                ++_stats.readsIssued;
                ++generatedOps;
                submit(std::move(pkt));
                issued = true;
            }
            // No free tag: a response will wake us.
        } else if (arrival != maxTick) {
            // Stream idle: sleep until the next arrival tick.
            scheduleIssueAt(arrival);
        }
        // Exhausted feed: nothing left to do; the queue drains.
    } else if (running && !budgetExhausted()) {
        switch (cfg.mix) {
          case RequestMix::ReadOnly:
          case RequestMix::ReadModifyWrite:
            if (tags.available()) {
                Packet pkt = makePacket(Command::Read, nextAddress());
                pkt.tag = tags.allocate();
                ++outstandingReads;
                ++_stats.readsIssued;
                ++generatedOps;
                submit(std::move(pkt));
                issued = true;
            }
            break;
          case RequestMix::WriteOnly:
            if (writeCredits > 0) {
                --writeCredits;
                ++outstandingWrites;
                ++_stats.writesIssued;
                ++generatedOps;
                Packet pkt = makePacket(Command::Write, nextAddress());
                submit(std::move(pkt));
                issued = true;
            }
            break;
          case RequestMix::Atomic:
            if (tags.available()) {
                Packet pkt = makePacket(Command::Atomic, nextAddress());
                // Atomic requests carry a 16 B immediate operand; the
                // update happens in the vault controller.
                pkt.payload = 16;
                pkt.tag = tags.allocate();
                ++outstandingReads;
                ++_stats.readsIssued;
                ++generatedOps;
                submit(std::move(pkt));
                issued = true;
            }
            break;
        }
    }

    if (issued) {
        nextIssueAllowed = queue.now() + cfg.issueInterval;
        // Keep the pipeline full: try again next cycle. If nothing can
        // issue then, the port goes quiet until a response arrives.
        scheduleIssue();
    }
    // Not issued: wait for onResponse() to wake us.
}

void
GupsPort::registerCheckers(CheckerRegistry &registry,
                           const std::string &name) const
{
    // A tag is allocated per outstanding tagged request and nothing
    // else; any drift is a leak or a live-tag reuse.
    registry.add(std::make_unique<TagPoolChecker>(
        name + ".tags", tags,
        [this] { return static_cast<std::uint64_t>(outstandingReads); }));
    // Write FIFO credits obey the same conservation law as tags.
    registry.addLambda(name + ".write_credits",
                       [this](Tick) -> std::string {
        if (writeCredits + outstandingWrites == cfg.writeCreditDepth)
            return {};
        std::ostringstream out;
        out << "write-credit conservation broken: credits="
            << writeCredits << " + outstanding=" << outstandingWrites
            << " != depth=" << cfg.writeCreditDepth;
        return out.str();
    });
}

void
GupsPort::registerStats(StatRegistry &registry,
                        const StatPath &path) const
{
    registry.addValue((path / "reads_issued").str(),
                      "tagged requests issued", &_stats.readsIssued);
    registry.addValue((path / "writes_issued").str(),
                      "write requests issued", &_stats.writesIssued);
    // Completion counters and latency summaries are deferred into the
    // tick batches (onResponse); these evaluators drain them first,
    // then apply the same conversion addValue() would, so the digest
    // bytes match the per-sample path exactly.
    registry.add((path / "reads_completed").str(),
                 "tagged responses received", [this] {
        flushLatencyBatches();
        return static_cast<double>(_stats.readsCompleted);
    });
    registry.add((path / "writes_completed").str(),
                 "write responses received", [this] {
        flushLatencyBatches();
        return static_cast<double>(_stats.writesCompleted);
    });
    registry.add((path / "raw_bytes").str(),
                 "raw link bytes of completed transactions", [this] {
        flushLatencyBatches();
        return static_cast<double>(_stats.rawBytes);
    });
    registry.add((path / "read_latency_avg_ns").str(),
                 "mean tagged-request round trip", [this] {
        flushLatencyBatches();
        return _stats.readLatencyNs.mean();
    });
    registry.add((path / "read_latency_max_ns").str(),
                 "max tagged-request round trip", [this] {
        flushLatencyBatches();
        return _stats.readLatencyNs.max();
    });
    registry.addValue((path / "thermal_failures").str(),
                      "responses flagging thermal shutdown",
                      &_stats.thermalFailures);
}

void
GupsPort::flushReadBatch() const
{
    const auto flushed = static_cast<std::uint64_t>(readBatch.size());
    readBatch.flushInto(_stats.readLatencyNs, &_stats.readLatencyHistNs);
    _stats.readsCompleted += flushed;
    _stats.rawBytes += flushed * readTransactionBytes;
    _stats.readPayloadBytes += flushed * readPayload;
}

void
GupsPort::flushWriteBatch() const
{
    const auto flushed = static_cast<std::uint64_t>(writeBatch.size());
    writeBatch.flushInto(_stats.writeLatencyNs);
    _stats.writesCompleted += flushed;
    _stats.rawBytes += flushed * writeTransactionBytes;
    _stats.writePayloadBytes += flushed * writePayload;
}

void
GupsPort::flushLatencyBatches() const
{
    if (!readBatch.empty())
        flushReadBatch();
    if (!writeBatch.empty())
        flushWriteBatch();
}

void
GupsPort::onResponse(const Packet &pkt)
{
    // The round trip stays in the integer tick domain here; the
    // ns conversion, the latency accumulators, the histogram probe,
    // and the per-completion byte counters are all batched into the
    // flush (flushReadBatch/flushWriteBatch), which reproduces the
    // per-sample results bit for bit (sim/stats.hh).
    const Tick latency_ticks = queue.now() - pkt.tIssued;

    if (pkt.thermalFailure)
        ++_stats.thermalFailures;

    switch (pkt.cmd) {
      case Command::Read:
      case Command::Atomic:
        // Protocol boundary reachable from device bugs: a stray
        // response must abort in release too (docs/correctness.md).
        // lint:allow(hot-check)
        HMCSIM_CHECK(outstandingReads > 0,
                     "stray read response (port %u, packet id %llu)",
                     portId, static_cast<unsigned long long>(pkt.id));
        --outstandingReads;
        tags.release(pkt.tag);
        // Open loop: report sojourn (arrival -> completion) before the
        // tag can be reused by the wake below.
        if (cfg.arrivals)
            cfg.arrivals->complete(arrivalByTag[pkt.tag], queue.now());
        if (readBatch.push(latency_ticks))
            flushReadBatch();
        if (cfg.mix == RequestMix::ReadModifyWrite)
            pendingRmwWrites.push_back(pkt.addr);
        break;
      case Command::Write:
        // Same protocol boundary as the read-response check above.
        // lint:allow(hot-check)
        HMCSIM_CHECK(outstandingWrites > 0,
                     "stray write response (port %u, packet id %llu)",
                     portId, static_cast<unsigned long long>(pkt.id));
        --outstandingWrites;
        ++writeCredits;
        if (writeBatch.push(latency_ticks))
            flushWriteBatch();
        break;
    }

    // Lifecycle tracing: this is the one place where a packet's full
    // set of stage stamps is known. Disabled tracing costs exactly
    // this untaken branch (bench_trace_overhead guards the claim).
    if (cfg.tracer)
        cfg.tracer->record(pkt);

    scheduleIssue();
}

} // namespace hmcsim
