#include "gups/gups_port.hh"

#include <memory>
#include <sstream>
#include <utility>

#include "sim/check.hh"
#include "sim/logging.hh"
#include "trace/lifecycle.hh"

namespace hmcsim
{

GupsPort::GupsPort(unsigned id, const GupsPortConfig &cfg, Bytes capacity,
                   EventQueue &queue, SubmitFn submit, std::uint64_t seed)
    : portId(id),
      cfg(cfg),
      queue(queue),
      submit(std::move(submit)),
      addrGen(
          AddressGeneratorConfig{
              cfg.mode,
              cfg.requestSize,
              capacity,
              cfg.mask,
              cfg.antiMask,
              // Stagger linear streams: each port works a different
              // region, 4 KB aligned, like independent array slices.
              cfg.staggerLinearStarts
                  ? (capacity / gupsPortCount) * id & ~Addr(4095)
                  : 0,
          },
          seed * 0x9E3779B97F4A7C15ULL + id + 1),
      tags(cfg.tagPoolDepth),
      writeCredits(cfg.writeCreditDepth),
      // Distinct id space per port so packet ids never collide.
      nextPacketId(static_cast<std::uint64_t>(id) << 48)
{
}

void
GupsPort::start()
{
    running = true;
    scheduleIssue();
}

void
GupsPort::stop()
{
    running = false;
}

Packet
GupsPort::makePacket(Command cmd, Addr addr)
{
    Packet pkt;
    pkt.id = nextPacketId++;
    pkt.cmd = cmd;
    pkt.addr = addr;
    pkt.payload = cfg.requestSize;
    pkt.port = static_cast<std::uint8_t>(portId);
    // On the AC-510's two links, ports 0-4 feed link 0 and 5-8 link 1
    // (five TX_ports per hmc_node, Fig. 14); with more links, ports
    // spread round-robin.
    if (cfg.numLinks == 2) {
        pkt.link = portId < 5 ? 0 : 1;
    } else {
        pkt.link = static_cast<std::uint8_t>(
            portId % (cfg.numLinks ? cfg.numLinks : 1));
    }
    pkt.tIssued = queue.now();
    return pkt;
}

void
GupsPort::scheduleIssue()
{
    // A stopped port generates nothing new, but dependent rw writes
    // whose reads already returned must still retire.
    if (issuePending || (!running && pendingRmwWrites.empty()))
        return;
    issuePending = true;
    const Tick now = queue.now();
    const Tick when = nextIssueAllowed > now ? nextIssueAllowed : now;
    queue.schedule(when, [this] { issueOne(); });
}

void
GupsPort::issueOne()
{
    issuePending = false;
    if (!running && pendingRmwWrites.empty())
        return;

    bool issued = false;

    // Arbitration: dependent rw writes go first (the hardware must
    // retire them to free the write FIFO), then fresh operations.
    if (!pendingRmwWrites.empty() && writeCredits > 0) {
        const Addr addr = pendingRmwWrites.front();
        pendingRmwWrites.pop_front();
        --writeCredits;
        ++outstandingWrites;
        ++_stats.writesIssued;
        Packet pkt = makePacket(Command::Write, addr);
        submit(std::move(pkt));
        issued = true;
    } else if (running && !budgetExhausted()) {
        switch (cfg.mix) {
          case RequestMix::ReadOnly:
          case RequestMix::ReadModifyWrite:
            if (tags.available()) {
                Packet pkt = makePacket(Command::Read, addrGen.next());
                pkt.tag = tags.allocate();
                ++outstandingReads;
                ++_stats.readsIssued;
                ++generatedOps;
                submit(std::move(pkt));
                issued = true;
            }
            break;
          case RequestMix::WriteOnly:
            if (writeCredits > 0) {
                --writeCredits;
                ++outstandingWrites;
                ++_stats.writesIssued;
                ++generatedOps;
                Packet pkt = makePacket(Command::Write, addrGen.next());
                submit(std::move(pkt));
                issued = true;
            }
            break;
          case RequestMix::Atomic:
            if (tags.available()) {
                Packet pkt = makePacket(Command::Atomic, addrGen.next());
                // Atomic requests carry a 16 B immediate operand; the
                // update happens in the vault controller.
                pkt.payload = 16;
                pkt.tag = tags.allocate();
                ++outstandingReads;
                ++_stats.readsIssued;
                ++generatedOps;
                submit(std::move(pkt));
                issued = true;
            }
            break;
        }
    }

    if (issued) {
        nextIssueAllowed = queue.now() + cfg.issueInterval;
        // Keep the pipeline full: try again next cycle. If nothing can
        // issue then, the port goes quiet until a response arrives.
        scheduleIssue();
    }
    // Not issued: wait for onResponse() to wake us.
}

void
GupsPort::registerCheckers(CheckerRegistry &registry,
                           const std::string &name) const
{
    // A tag is allocated per outstanding tagged request and nothing
    // else; any drift is a leak or a live-tag reuse.
    registry.add(std::make_unique<TagPoolChecker>(
        name + ".tags", tags,
        [this] { return static_cast<std::uint64_t>(outstandingReads); }));
    // Write FIFO credits obey the same conservation law as tags.
    registry.addLambda(name + ".write_credits",
                       [this](Tick) -> std::string {
        if (writeCredits + outstandingWrites == cfg.writeCreditDepth)
            return {};
        std::ostringstream out;
        out << "write-credit conservation broken: credits="
            << writeCredits << " + outstanding=" << outstandingWrites
            << " != depth=" << cfg.writeCreditDepth;
        return out.str();
    });
}

void
GupsPort::registerStats(StatRegistry &registry,
                        const StatPath &path) const
{
    registry.addValue((path / "reads_issued").str(),
                      "tagged requests issued", &_stats.readsIssued);
    registry.addValue((path / "writes_issued").str(),
                      "write requests issued", &_stats.writesIssued);
    registry.addValue((path / "reads_completed").str(),
                      "tagged responses received",
                      &_stats.readsCompleted);
    registry.addValue((path / "writes_completed").str(),
                      "write responses received",
                      &_stats.writesCompleted);
    registry.addValue((path / "raw_bytes").str(),
                      "raw link bytes of completed transactions",
                      &_stats.rawBytes);
    registry.add((path / "read_latency_avg_ns").str(),
                 "mean tagged-request round trip",
                 [this] { return _stats.readLatencyNs.mean(); });
    registry.add((path / "read_latency_max_ns").str(),
                 "max tagged-request round trip",
                 [this] { return _stats.readLatencyNs.max(); });
    registry.addValue((path / "thermal_failures").str(),
                      "responses flagging thermal shutdown",
                      &_stats.thermalFailures);
}

void
GupsPort::onResponse(const Packet &pkt)
{
    const double latency_ns =
        ticksToNs(queue.now() - pkt.tIssued);

    if (pkt.thermalFailure)
        ++_stats.thermalFailures;

    switch (pkt.cmd) {
      case Command::Read:
      case Command::Atomic:
        HMCSIM_CHECK(outstandingReads > 0,
                     "stray read response (port %u, packet id %llu)",
                     portId, static_cast<unsigned long long>(pkt.id));
        --outstandingReads;
        tags.release(pkt.tag);
        ++_stats.readsCompleted;
        _stats.readLatencyNs.sample(latency_ns);
        _stats.readLatencyHistNs.sample(latency_ns);
        _stats.rawBytes += transactionBytes(pkt.cmd, pkt.payload);
        _stats.readPayloadBytes += pkt.payload;
        if (cfg.mix == RequestMix::ReadModifyWrite)
            pendingRmwWrites.push_back(pkt.addr);
        break;
      case Command::Write:
        HMCSIM_CHECK(outstandingWrites > 0,
                     "stray write response (port %u, packet id %llu)",
                     portId, static_cast<unsigned long long>(pkt.id));
        --outstandingWrites;
        ++writeCredits;
        ++_stats.writesCompleted;
        _stats.writeLatencyNs.sample(latency_ns);
        _stats.rawBytes += transactionBytes(pkt.cmd, pkt.payload);
        _stats.writePayloadBytes += pkt.payload;
        break;
    }

    // Lifecycle tracing: this is the one place where a packet's full
    // set of stage stamps is known. Disabled tracing costs exactly
    // this untaken branch (bench_trace_overhead guards the claim).
    if (cfg.tracer)
        cfg.tracer->record(pkt);

    scheduleIssue();
}

} // namespace hmcsim
