/**
 * @file
 * Trace-driven workloads.
 *
 * The paper's GUPS patterns are "building blocks of real
 * applications" (Sec. I); this module closes the loop by letting real
 * or synthetic *traces* drive the same simulated platform. A trace is
 * a sequence of (op, address, size) records; sources include:
 *
 *  - text files ("R 0x1a2b 128" per line, '#' comments),
 *  - synthetic generators for the classic application shapes the
 *    paper's introduction gestures at: uniform random (GUPS), strided
 *    streams, Zipf-skewed hot spots, and pointer chases.
 */

#ifndef HMCSIM_GUPS_TRACE_HH
#define HMCSIM_GUPS_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "protocol/packet.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** One trace record. */
struct TraceEntry
{
    Command op = Command::Read;
    Addr addr = 0;
    Bytes size = 128;
};

/** An in-memory trace. */
using Trace = std::vector<TraceEntry>;

/**
 * Parse a text trace. Format, one record per line:
 *
 *     R 0x00001a00 128
 *     W 4096 64
 *     A 0x2000          (atomic; size fixed at 16)
 *
 * Blank lines and lines starting with '#' are ignored.
 * Calls fatal() on malformed input.
 */
Trace parseTrace(std::istream &in);

/** Parse a trace from a string (convenience for tests). */
Trace parseTraceString(const std::string &text);

/** Serialize a trace in the same text format. */
std::string formatTrace(const Trace &trace);

// ---- Synthetic generators ---------------------------------------------

/** Common knobs for the synthetic trace generators. */
struct SyntheticTraceConfig
{
    std::size_t numEntries = 10000;
    Bytes requestSize = 128;
    /** Footprint the addresses are drawn from. */
    Bytes footprint = 4 * gib;
    /** Base address of the footprint. */
    Addr base = 0;
    /** Fraction of operations that are writes (reads otherwise). */
    double writeFraction = 0.0;
    std::uint64_t seed = 1;
};

/** Uniform random accesses over the footprint (GUPS-like). */
Trace uniformTrace(const SyntheticTraceConfig &cfg);

/**
 * Sequential stream with a fixed stride (stride == requestSize gives
 * a dense stream; larger strides model column walks).
 */
Trace stridedTrace(const SyntheticTraceConfig &cfg, Bytes stride);

/**
 * Zipf-distributed accesses over @p num_objects equally sized
 * objects: object popularity ~ 1/rank^alpha. alpha = 0 degenerates
 * to uniform; alpha ~1 models hot keys in caches/key-value stores.
 */
Trace zipfTrace(const SyntheticTraceConfig &cfg, double alpha,
                std::size_t num_objects);

/**
 * Pointer chase: a random permutation walk where each access's
 * location was determined by the previous one -- fully dependent,
 * latency-bound traffic. The dependence is honored by replaying it
 * with outstanding = 1.
 */
Trace pointerChaseTrace(const SyntheticTraceConfig &cfg);

} // namespace hmcsim

#endif // HMCSIM_GUPS_TRACE_HH
