/**
 * @file
 * One GUPS port (Fig. 4b): address generator, read tag pool, write
 * request FIFO credits, arbitration between pending request kinds,
 * and the monitoring unit that measures read latencies.
 *
 * The FPGA runs GUPS at 187.5 MHz and instantiates nine ports to
 * saturate the HMC links; each port can issue at most one request per
 * cycle and at most 64 outstanding reads (the tag pool). Those two
 * structural limits, not the model's plumbing, bound the offered load
 * exactly as in the hardware.
 */

#ifndef HMCSIM_GUPS_GUPS_PORT_HH
#define HMCSIM_GUPS_GUPS_PORT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "gups/address_generator.hh"
#include "gups/arrival_feed.hh"
#include "protocol/packet.hh"
#include "protocol/tag_pool.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace hmcsim
{

class PacketTracer;
class SnapshotFixup;

/** GUPS ports instantiated on the FPGA (one of ten is reserved). */
constexpr unsigned gupsPortCount = 9;

/** Configuration of one port. */
struct GupsPortConfig
{
    RequestMix mix = RequestMix::ReadOnly;
    Bytes requestSize = 128;
    AddressingMode mode = AddressingMode::Random;
    Addr mask = 0;
    Addr antiMask = 0;
    /** Outstanding-read limit ("Rd. Tag Pool", depth 64). */
    unsigned tagPoolDepth = 64;
    /** Outstanding-write limit ("Wr. Req. FIFO"). */
    unsigned writeCreditDepth = 64;
    /** Minimum spacing between issues: one 187.5 MHz cycle. */
    Tick issueInterval = 5333;
    /**
     * Stop after this many generated operations (reads; in rw mode
     * each read also produces one write). 0 = unbounded. Stream GUPS
     * uses this to send fixed-size request groups.
     */
    std::uint64_t requestBudget = 0;
    /**
     * Stagger each port's linear stream into a distinct region (the
     * default: nine independent array slices). Disable to model all
     * ports walking one shared array front-to-back.
     */
    bool staggerLinearStarts = true;
    /** External links the port's requests are distributed over. */
    unsigned numLinks = 2;
    /**
     * Lifecycle tracer fed every completed packet (trace/lifecycle.hh).
     * Null (the default) is the zero-cost fast path: the only per-
     * response overhead is this untaken branch. Not owned; shared by
     * all ports of one system (Ac510Config::tracer wires it).
     */
    PacketTracer *tracer = nullptr;
    /**
     * Open-loop arrival feed (gups/arrival_feed.hh). Null (the
     * default) is classic closed-loop GUPS: issue whenever a tag or
     * credit frees up. Non-null switches the port to arrival-driven
     * issue: one tagged read per feed entry, admitted no earlier than
     * its arrival tick, with sojourn (arrival -> completion) reported
     * back through the feed. Open-loop traffic is reads regardless of
     * mix (the fleet service models read-dominated lookups); the
     * issue-interval and tag-pool structural limits still apply, so
     * bursts queue exactly as the hardware would make them. Not
     * owned; must be unique to this port and outlive it.
     */
    ArrivalFeed *arrivals = nullptr;
};

/** Counters exposed by a port's monitoring unit. */
struct GupsPortStats
{
    std::uint64_t readsIssued = 0;
    std::uint64_t writesIssued = 0;
    std::uint64_t readsCompleted = 0;
    std::uint64_t writesCompleted = 0;
    /** Raw link bytes of completed transactions (req+resp packets). */
    Bytes rawBytes = 0;
    Bytes readPayloadBytes = 0;
    Bytes writePayloadBytes = 0;
    /** Read round-trip latencies in nanoseconds. */
    SampleStats readLatencyNs;
    /** Write round-trip latencies in nanoseconds. */
    SampleStats writeLatencyNs;
    /** Read-latency distribution for percentile reporting
     *  (100 ns bins up to 100 us; beyond lands in overflow). */
    Histogram readLatencyHistNs{0.0, 100000.0, 1000};
    /** Responses carrying the thermal-failure flag. */
    std::uint64_t thermalFailures = 0;
};

/** A single traffic-generator port. */
class GupsPort
{
  public:
    /** Sink a port submits requests into (the HMC controller). */
    using SubmitFn = std::function<void(Packet &&)>;

    /**
     * @param id Port index (0..8 on the AC-510).
     * @param cfg Port configuration.
     * @param capacity Cube capacity for address generation.
     * @param queue Shared event queue.
     * @param submit Request sink.
     * @param seed Experiment seed (port id is mixed in).
     */
    GupsPort(unsigned id, const GupsPortConfig &cfg, Bytes capacity,
             EventQueue &queue, SubmitFn submit, std::uint64_t seed);

    /** Begin issuing requests. */
    void start();

    /** Stop issuing new requests (outstanding ones still drain). */
    void stop();

    /** Deliver a response to this port. */
    void onResponse(const Packet &pkt);

    /** True when no requests are outstanding. */
    bool
    idle() const
    {
        return outstandingReads == 0 && outstandingWrites == 0 &&
               pendingRmwWrites.empty();
    }

    /** True when the request budget (if any) has been exhausted. */
    bool
    budgetExhausted() const
    {
        return cfg.requestBudget != 0 &&
               generatedOps >= cfg.requestBudget;
    }

    /**
     * This port's monitoring counters. Latency samples and completion
     * counters are buffered in tick-domain batches on the hot path
     * (sim/stats.hh); the accessor drains them first, so readers
     * always observe exactly the values the per-sample path would
     * have produced.
     */
    const GupsPortStats &
    stats() const
    {
        flushLatencyBatches();
        return _stats;
    }

    /** Register this port's monitoring counters under @p path. */
    void registerStats(StatRegistry &registry, const StatPath &path) const;

    /**
     * Register this port's model invariants (tag-pool accounting,
     * write-credit conservation) under @p name. The port must outlive
     * the registry.
     */
    void registerCheckers(CheckerRegistry &registry,
                          const std::string &name) const;
    /** Clear monitoring counters (e.g. after warm-up). Buffered
     *  samples are warm-up samples, so they are dropped, not
     *  flushed. */
    void
    resetStats()
    {
        _stats = GupsPortStats{};
        readBatch.clear();
        writeBatch.clear();
    }

    unsigned id() const { return portId; }
    unsigned outstanding() const
    {
        return outstandingReads + outstandingWrites;
    }
    const GupsPortConfig &config() const { return cfg; }

    /** The port's one self-scheduled event, named (instead of an
     *  inline lambda) so simulator fork can recognize it by invoke
     *  thunk and relocate its pointer (sim/snapshot.hh). */
    struct IssueEvent // lint:snapshot-state
    {
        GupsPort *self; // lint:allow(snapshot-safe, relocated through the fork fixup map)
        void operator()() { self->issueOne(); }
        void relocate(const SnapshotFixup &fixup);
    };

    /**
     * Become a state copy of @p src for simulator fork: RNG stream,
     * tag pool, credits, pending rw writes, issue gating, the
     * pre-generated address window, and the buffered latency batches
     * (copied raw, never flushed -- the source stays untouched so
     * concurrent forks of one warm port are safe). Must run on a
     * freshly built port with identical configuration; registers the
     * src -> this mapping in @p fixup.
     */
    void restoreFrom(const GupsPort &src, SnapshotFixup &fixup);

  private:
    /** Issue-window depth: addresses pre-generated per refill so the
     *  generator's mask/bound work amortizes across a burst. */
    static constexpr unsigned addrWindowSize = 32;

    /** Arrange for issueOne() to run at the next allowed issue slot. */
    void scheduleIssue();

    /** Like scheduleIssue(), but no earlier than @p earliest (used to
     *  sleep until the next open-loop arrival). */
    void scheduleIssueAt(Tick earliest);

    /** Try to issue a single request; reschedules itself while the
     *  port is running and has work. */
    void issueOne();

    /** Pop the next generated address, refilling the window when it
     *  runs dry (RNG consumed in the same order as per-call next()). */
    Addr
    nextAddress()
    {
        if (addrWindowPos == addrWindowSize) {
            addrGen.fill(addrWindow, addrWindowSize);
            addrWindowPos = 0;
        }
        return addrWindow[addrWindowPos++];
    }

    /** Drain the buffered latency batches and deferred completion
     *  counters into _stats (see stats()). */
    void flushLatencyBatches() const;
    void flushReadBatch() const;
    void flushWriteBatch() const;

    Packet makePacket(Command cmd, Addr addr);

    unsigned portId;
    GupsPortConfig cfg;
    EventQueue &queue;
    SubmitFn submit;
    AddressGenerator addrGen;
    TagPool tags;
    unsigned writeCredits;
    unsigned outstandingReads = 0;
    unsigned outstandingWrites = 0;
    /** Writes waiting to be issued after their read returned (rw). */
    std::deque<Addr> pendingRmwWrites;
    bool running = false;
    bool issuePending = false;
    Tick nextIssueAllowed = 0;
    std::uint64_t generatedOps = 0;
    std::uint64_t nextPacketId;

    // Hoisted per-packet constants (constructor): link selection and
    // the per-completion byte costs, which are fixed by the port's
    // mix and request size, so the response path adds n * constant at
    // flush time instead of recomputing per packet.
    std::uint8_t linkId = 0;
    Bytes readTransactionBytes = 0;
    Bytes readPayload = 0;
    Bytes writeTransactionBytes = 0;
    Bytes writePayload = 0;

    /** Pre-generated issue addresses (nextAddress). */
    Addr addrWindow[addrWindowSize];
    unsigned addrWindowPos = addrWindowSize;

    /** Open-loop only: arrival tick of each in-flight tagged request,
     *  indexed by tag, so completions can report sojourn (arrival ->
     *  completion) back through the feed. Empty in closed-loop mode. */
    std::vector<Tick> arrivalByTag;

    // Tick-domain latency buffers; mutable so the const stats()
    // accessor can drain them (logically the stats are unchanged --
    // flushing only materializes values the per-sample path would
    // already hold).
    mutable TickLatencyBatch readBatch;
    mutable TickLatencyBatch writeBatch;
    mutable GupsPortStats _stats;
};

} // namespace hmcsim

#endif // HMCSIM_GUPS_GUPS_PORT_HH
