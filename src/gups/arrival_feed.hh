/**
 * @file
 * Open-loop arrival feed consumed by a GUPS port.
 *
 * Closed-loop GUPS (the paper's benchmark) keeps the tag pool
 * saturated: offered load is whatever the cube sustains. An open-loop
 * port instead admits requests at externally-scheduled arrival ticks
 * (service/arrival.hh generates them), so queueing delay ahead of
 * issue becomes visible: the feed's complete() callback receives the
 * *arrival* tick, not the issue tick, and sojourn = completion -
 * arrival includes time spent waiting for a free tag.
 */

#ifndef HMCSIM_GUPS_ARRIVAL_FEED_HH
#define HMCSIM_GUPS_ARRIVAL_FEED_HH

#include "sim/types.hh"

namespace hmcsim
{

/**
 * Source of open-loop request arrivals, consumed in order. The feed
 * is owned by the caller and must outlive the port; like everything
 * else a simulator touches, it obeys the one-simulator-per-thread
 * contract (host/ac510.hh).
 */
class ArrivalFeed
{
  public:
    virtual ~ArrivalFeed() = default;

    /** Arrival tick of the next not-yet-issued request, or maxTick
     *  when the stream is exhausted. Must be non-decreasing. */
    virtual Tick peekArrival() const = 0;

    /** Consume the request just issued (the one peekArrival named). */
    virtual void pop() = 0;

    /**
     * Record the completion of an open-loop request: @p arrival is
     * the tick peekArrival() reported when it was admitted, and
     * @p completion the tick its response arrived back at the port.
     */
    virtual void complete(Tick arrival, Tick completion) = 0;
};

} // namespace hmcsim

#endif // HMCSIM_GUPS_ARRIVAL_FEED_HH
