#include "gups/trace.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "sim/logging.hh"

namespace hmcsim
{

namespace
{

Command
parseOp(const std::string &token, int line_no)
{
    if (token == "R" || token == "r")
        return Command::Read;
    if (token == "W" || token == "w")
        return Command::Write;
    if (token == "A" || token == "a")
        return Command::Atomic;
    fatal("trace line %d: unknown op '%s' (expected R/W/A)", line_no,
          token.c_str());
}

} // namespace

Trace
parseTrace(std::istream &in)
{
    Trace trace;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string op;
        if (!(fields >> op))
            continue; // blank line
        TraceEntry entry;
        entry.op = parseOp(op, line_no);
        std::string addr_token;
        if (!(fields >> addr_token))
            fatal("trace line %d: missing address", line_no);
        entry.addr = static_cast<Addr>(
            std::stoull(addr_token, nullptr, 0)); // accepts 0x...
        if (entry.op == Command::Atomic) {
            entry.size = 16;
        } else {
            unsigned long long size = 0;
            if (!(fields >> size))
                fatal("trace line %d: missing size", line_no);
            if (size == 0 || size % 16 != 0 || size > maxPayloadBytes)
                fatal("trace line %d: bad size %llu", line_no, size);
            entry.size = size;
        }
        trace.push_back(entry);
    }
    return trace;
}

Trace
parseTraceString(const std::string &text)
{
    std::istringstream in(text);
    return parseTrace(in);
}

std::string
formatTrace(const Trace &trace)
{
    std::ostringstream out;
    for (const TraceEntry &e : trace) {
        switch (e.op) {
          case Command::Read:
            out << "R 0x" << std::hex << e.addr << std::dec << ' '
                << e.size << '\n';
            break;
          case Command::Write:
            out << "W 0x" << std::hex << e.addr << std::dec << ' '
                << e.size << '\n';
            break;
          case Command::Atomic:
            out << "A 0x" << std::hex << e.addr << std::dec << '\n';
            break;
        }
    }
    return out.str();
}

namespace
{

/** Pick read or write per the configured write fraction. */
Command
pickOp(const SyntheticTraceConfig &cfg, Xoshiro256StarStar &rng)
{
    return rng.nextDouble() < cfg.writeFraction ? Command::Write
                                                : Command::Read;
}

Addr
alignDown(Addr addr, Bytes granule)
{
    return addr / granule * granule;
}

} // namespace

Trace
uniformTrace(const SyntheticTraceConfig &cfg)
{
    Xoshiro256StarStar rng(cfg.seed);
    Trace trace;
    trace.reserve(cfg.numEntries);
    const Bytes slots = cfg.footprint / cfg.requestSize;
    for (std::size_t i = 0; i < cfg.numEntries; ++i) {
        trace.push_back({pickOp(cfg, rng),
                         cfg.base + rng.nextBounded(slots) *
                                        cfg.requestSize,
                         cfg.requestSize});
    }
    return trace;
}

Trace
stridedTrace(const SyntheticTraceConfig &cfg, Bytes stride)
{
    if (stride == 0)
        fatal("strided trace needs a non-zero stride");
    Xoshiro256StarStar rng(cfg.seed);
    Trace trace;
    trace.reserve(cfg.numEntries);
    Addr cursor = 0;
    for (std::size_t i = 0; i < cfg.numEntries; ++i) {
        trace.push_back({pickOp(cfg, rng),
                         cfg.base + alignDown(cursor % cfg.footprint,
                                              cfg.requestSize),
                         cfg.requestSize});
        cursor += stride;
    }
    return trace;
}

Trace
zipfTrace(const SyntheticTraceConfig &cfg, double alpha,
          std::size_t num_objects)
{
    if (num_objects == 0)
        fatal("zipf trace needs at least one object");
    Xoshiro256StarStar rng(cfg.seed);

    // CDF over object ranks: weight(rank) = 1 / rank^alpha.
    std::vector<double> cdf(num_objects);
    double sum = 0.0;
    for (std::size_t r = 0; r < num_objects; ++r) {
        sum += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
        cdf[r] = sum;
    }
    for (double &v : cdf)
        v /= sum;

    // Scatter object ranks over the footprint with a fixed random
    // placement so hot objects are not address-adjacent.
    const Bytes slots = cfg.footprint / cfg.requestSize;
    std::vector<Addr> placement(num_objects);
    for (auto &slot : placement)
        slot = rng.nextBounded(slots);

    Trace trace;
    trace.reserve(cfg.numEntries);
    for (std::size_t i = 0; i < cfg.numEntries; ++i) {
        const double u = rng.nextDouble();
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        const auto rank =
            static_cast<std::size_t>(it - cdf.begin());
        trace.push_back({pickOp(cfg, rng),
                         cfg.base + placement[rank] * cfg.requestSize,
                         cfg.requestSize});
    }
    return trace;
}

Trace
pointerChaseTrace(const SyntheticTraceConfig &cfg)
{
    Xoshiro256StarStar rng(cfg.seed);
    // Visit a random permutation of distinct slots: each access's
    // target is stored in the previous node, so issue order is the
    // dependence order (replay with maxOutstanding = 1).
    const Bytes slots_in_footprint = cfg.footprint / cfg.requestSize;
    const std::size_t nodes =
        static_cast<std::size_t>(std::min<Bytes>(cfg.numEntries,
                                                 slots_in_footprint));
    std::vector<Addr> order(nodes);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = nodes; i > 1; --i)
        std::swap(order[i - 1], order[rng.nextBounded(i)]);

    Trace trace;
    trace.reserve(cfg.numEntries);
    for (std::size_t i = 0; i < cfg.numEntries; ++i) {
        trace.push_back({Command::Read,
                         cfg.base + order[i % nodes] * cfg.requestSize,
                         cfg.requestSize});
    }
    return trace;
}

} // namespace hmcsim
