/**
 * @file
 * Targeted access patterns (Sec. IV-A).
 *
 * The paper builds its sweep axes from mask registers: an "n-bank"
 * pattern confines random traffic to n banks of vault 0, an "n-vault"
 * pattern to all banks of n vaults. This header constructs the masks
 * from the address mapper's field positions, plus the raw eight-bit
 * masks of the Fig. 6 experiment.
 */

#ifndef HMCSIM_GUPS_PATTERNS_HH
#define HMCSIM_GUPS_PATTERNS_HH

#include <string>
#include <vector>

#include "hmc/address_mapper.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** A named mask pair defining where traffic may land. */
struct AccessPattern
{
    std::string name;
    Addr mask = 0;      ///< Bits forced to zero.
    Addr antiMask = 0;  ///< Bits forced to one.
    /** Number of distinct vaults reachable (for reporting). */
    unsigned vaultSpan = 0;
    /** Number of distinct banks reachable in total. */
    unsigned bankSpan = 0;
};

/** Make a mask with bits [lo, hi] set. */
constexpr Addr
bitRangeMask(unsigned lo, unsigned hi)
{
    const Addr width = hi - lo + 1;
    const Addr ones =
        width >= 64 ? ~Addr(0) : ((Addr(1) << width) - 1);
    return ones << lo;
}

/**
 * Pattern confining traffic to @p num_banks banks within vault 0.
 * @p num_banks must be a power of two <= banks per vault.
 */
AccessPattern bankPattern(const AddressMapper &mapper,
                          unsigned num_banks);

/**
 * Pattern spreading traffic over all banks of @p num_vaults vaults.
 * @p num_vaults must be a power of two <= vault count.
 */
AccessPattern vaultPattern(const AddressMapper &mapper,
                           unsigned num_vaults);

/**
 * The paper's canonical x-axis (Figs. 7-10, 16): 16, 8, 4, 2 vaults,
 * then 1 vault (all banks), then 8, 4, 2, 1 banks of vault 0.
 * Ordered from most to least distributed.
 */
std::vector<AccessPattern> paperPatternAxis(const AddressMapper &mapper);

/**
 * Fig. 6: eight-bit masks applied at the given low bit positions
 * (24, 10, 7, 3, 2, 1, 0 -> masks 24-31, 10-17, 7-14, 3-10, 2-9,
 * 1-8, 0-7).
 */
std::vector<AccessPattern> fig6MaskSweep(const AddressMapper &mapper);

} // namespace hmcsim

#endif // HMCSIM_GUPS_PATTERNS_HH
