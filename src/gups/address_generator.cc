#include "gups/address_generator.hh"

#include "sim/logging.hh"

namespace hmcsim
{

const char *
addressingModeName(AddressingMode mode)
{
    return mode == AddressingMode::Random ? "random" : "linear";
}

AddressGenerator::AddressGenerator(const AddressGeneratorConfig &cfg,
                                   std::uint64_t seed)
    : cfg(cfg), rng(seed),
      linearCursor(cfg.linearStart % (cfg.capacity ? cfg.capacity : 1))
{
    // HMC payloads are 1..8 flits: any multiple of 16 B up to 128 B.
    if (cfg.requestSize == 0 || cfg.requestSize % 16 != 0)
        fatal("request size must be a non-zero multiple of 16 B");
    // When the capacity is not a multiple of the request size, the
    // linear sequence wraps before an access would cross the limit.

    // Requests should start on 32 B boundaries to use the vault data
    // bus efficiently (Sec. II-C); sizes that are not a multiple of
    // 32 B can only be held to 16 B boundaries.
    align = cfg.requestSize % 32 == 0 ? 32 : 16;
    alignMask = ~(align - 1);
    randomBound = cfg.capacity / align;
}

Addr
AddressGenerator::next()
{
    Addr addr;
    if (cfg.mode == AddressingMode::Random) {
        addr = rng.nextBounded(randomBound) * align;
    } else {
        addr = linearCursor;
        linearCursor += cfg.requestSize;
        if (linearCursor + cfg.requestSize > cfg.capacity)
            linearCursor = 0;
    }
    // Force bits to zero/one per the mask registers, then re-align so
    // the anti-mask cannot produce an unaligned access.
    addr = (addr & ~cfg.mask) | cfg.antiMask;
    addr &= alignMask;
    return addr;
}

void
AddressGenerator::fill(Addr *out, std::size_t n)
{
    const Addr clear_mask = ~cfg.mask;
    const Addr set_mask = cfg.antiMask;
    if (cfg.mode == AddressingMode::Random) {
        const std::uint64_t bound = randomBound;
        const Addr a = align;
        for (std::size_t i = 0; i < n; ++i) {
            const Addr addr = rng.nextBounded(bound) * a;
            out[i] = ((addr & clear_mask) | set_mask) & alignMask;
        }
    } else {
        Addr cursor = linearCursor;
        const Bytes step = cfg.requestSize;
        const Bytes limit = cfg.capacity;
        for (std::size_t i = 0; i < n; ++i) {
            const Addr addr = cursor;
            cursor += step;
            if (cursor + step > limit)
                cursor = 0;
            out[i] = ((addr & clear_mask) | set_mask) & alignMask;
        }
        linearCursor = cursor;
    }
}

} // namespace hmcsim
