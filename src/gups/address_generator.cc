#include "gups/address_generator.hh"

#include "sim/logging.hh"

namespace hmcsim
{

const char *
addressingModeName(AddressingMode mode)
{
    return mode == AddressingMode::Random ? "random" : "linear";
}

AddressGenerator::AddressGenerator(const AddressGeneratorConfig &cfg,
                                   std::uint64_t seed)
    : cfg(cfg), rng(seed),
      linearCursor(cfg.linearStart % (cfg.capacity ? cfg.capacity : 1))
{
    // HMC payloads are 1..8 flits: any multiple of 16 B up to 128 B.
    if (cfg.requestSize == 0 || cfg.requestSize % 16 != 0)
        fatal("request size must be a non-zero multiple of 16 B");
    // When the capacity is not a multiple of the request size, the
    // linear sequence wraps before an access would cross the limit.
}

Addr
AddressGenerator::alignment() const
{
    // Requests should start on 32 B boundaries to use the vault data
    // bus efficiently (Sec. II-C); sizes that are not a multiple of
    // 32 B can only be held to 16 B boundaries.
    return cfg.requestSize % 32 == 0 ? 32 : 16;
}

Addr
AddressGenerator::next()
{
    const Addr align = alignment();
    Addr addr;
    if (cfg.mode == AddressingMode::Random) {
        addr = rng.nextBounded(cfg.capacity / align) * align;
    } else {
        addr = linearCursor;
        linearCursor += cfg.requestSize;
        if (linearCursor + cfg.requestSize > cfg.capacity)
            linearCursor = 0;
    }
    // Force bits to zero/one per the mask registers, then re-align so
    // the anti-mask cannot produce an unaligned access.
    addr = (addr & ~cfg.mask) | cfg.antiMask;
    addr &= ~(align - 1);
    return addr;
}

} // namespace hmcsim
