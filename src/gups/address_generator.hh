/**
 * @file
 * GUPS address generator (Fig. 4b, "Add. Gen.").
 *
 * Each GUPS port generates linear or random addresses and can force
 * address bits to zero (mask) or one (anti-mask), which is how the
 * paper steers traffic at specific quadrants, vaults, and banks
 * (Sec. III-B, Sec. IV-A).
 */

#ifndef HMCSIM_GUPS_ADDRESS_GENERATOR_HH
#define HMCSIM_GUPS_ADDRESS_GENERATOR_HH

#include <cstddef>
#include <cstdint>

#include "sim/random.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Addressing mode of a port. */
enum class AddressingMode : std::uint8_t
{
    Random, ///< Uniform random over the (masked) address space.
    Linear, ///< Sequential, striding by the request size.
};

const char *addressingModeName(AddressingMode mode);

/** Generator configuration. */
struct AddressGeneratorConfig
{
    AddressingMode mode = AddressingMode::Random;
    /** Request size; addresses align to this boundary. */
    Bytes requestSize = 128;
    /** Device capacity (wraps the linear sequence). */
    Bytes capacity = 4 * gib;
    /** Bits forced to zero. */
    Addr mask = 0;
    /** Bits forced to one. */
    Addr antiMask = 0;
    /**
     * Starting address of the linear sequence. The nine GUPS ports
     * stream from staggered regions so linear full-scale traffic
     * keeps several banks busy at once.
     */
    Addr linearStart = 0;
};

/** Produces the address stream for one port. */
class AddressGenerator
{
  public:
    AddressGenerator(const AddressGeneratorConfig &cfg,
                     std::uint64_t seed);

    /** Next address in the stream (aligned, masked). */
    Addr next();

    /**
     * Generate the next @p n addresses of the stream into @p out.
     * Exactly equivalent to n calls to next(): the RNG (or linear
     * cursor) is consumed in the same order, so a port that fills an
     * issue window ahead of time produces the same address sequence
     * as one that generates per request (the tail it never issues is
     * unobservable). Hoists the alignment/bound/mask work out of the
     * per-address loop.
     */
    void fill(Addr *out, std::size_t n);

    /** Alignment the generator holds addresses to (16 or 32 B). */
    Addr alignment() const { return align; }

    const AddressGeneratorConfig &config() const { return cfg; }

  private:
    AddressGeneratorConfig cfg;
    Xoshiro256StarStar rng;
    Addr linearCursor = 0;
    // Hoisted per-address constants: next()/fill() used to recompute
    // the alignment and the random bound (a 64-bit divide) per call.
    Addr align = 16;
    Addr alignMask = ~Addr(15);
    std::uint64_t randomBound = 1;
};

} // namespace hmcsim

#endif // HMCSIM_GUPS_ADDRESS_GENERATOR_HH
