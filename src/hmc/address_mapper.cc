#include "hmc/address_mapper.hh"

#include <bit>
#include <set>
#include <utility>

#include "sim/logging.hh"

namespace hmcsim
{

namespace
{
unsigned
log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal("%s must be a power of two (got %llu)", what,
              static_cast<unsigned long long>(v));
    return static_cast<unsigned>(std::countr_zero(v));
}
} // namespace

const char *
mappingSchemeName(MappingScheme scheme)
{
    switch (scheme) {
      case MappingScheme::VaultFirst:
        return "vault-first";
      case MappingScheme::BankFirst:
        return "bank-first";
      case MappingScheme::ContiguousVault:
        return "contiguous-vault";
    }
    return "?";
}

AddressMapper::AddressMapper(const HmcConfig &cfg, MaxBlockSize max_block,
                             Bytes row_bytes, MappingScheme scheme)
    : cfg(cfg),
      _maxBlock(static_cast<Bytes>(max_block)),
      rowBytes(row_bytes),
      _scheme(scheme)
{
    _addrBits = log2Exact(cfg.capacity, "device capacity");
    const unsigned block_bits = log2Exact(_maxBlock / 16, "block ratio");
    const unsigned field_base = 4 + block_bits;
    _vaultBits = log2Exact(cfg.numVaults, "vault count");
    _bankBits = log2Exact(cfg.banksPerVault(), "banks per vault");
    switch (_scheme) {
      case MappingScheme::VaultFirst:
        _vaultShift = field_base;
        _bankShift = _vaultShift + _vaultBits;
        _rowShift = field_base + _vaultBits + _bankBits;
        break;
      case MappingScheme::BankFirst:
        _bankShift = field_base;
        _vaultShift = _bankShift + _bankBits;
        _rowShift = field_base + _vaultBits + _bankBits;
        break;
      case MappingScheme::ContiguousVault:
        // Vault in the top bits, banks just below; everything under
        // the bank field is a flat bank-local byte address.
        _vaultShift = _addrBits - _vaultBits;
        _bankShift = _vaultShift - _bankBits;
        _rowShift = _bankShift;
        break;
    }
    buildPlan();
}

void
AddressMapper::buildPlan()
{
    _addrMask = addressMask();
    _vaultFieldMask = cfg.numVaults - 1;
    _bankFieldMask = cfg.banksPerVault() - 1;
    _blockMask = _maxBlock - 1;
    _blockShift = static_cast<unsigned>(std::countr_zero(_maxBlock));
    _bankLocalMask = (Addr(1) << _bankShift) - 1;
    _contiguous = _scheme == MappingScheme::ContiguousVault;

    _quadDiv = cfg.vaultsPerQuadrant();
    _quadPow2 = std::has_single_bit(std::uint64_t{_quadDiv});
    if (_quadPow2)
        _quadShift = static_cast<unsigned>(std::countr_zero(
            std::uint64_t{_quadDiv}));

    _rowPow2 = std::has_single_bit(std::uint64_t{rowBytes});
    if (_rowPow2) {
        _rowByteShift = static_cast<unsigned>(std::countr_zero(
            std::uint64_t{rowBytes}));
        _rowByteMask = rowBytes - 1;
    }
}

DecodedAddress
AddressMapper::decodeReference(Addr addr) const
{
    addr &= addressMask();

    DecodedAddress d;
    d.vault = static_cast<std::uint8_t>((addr >> _vaultShift) &
                                        (cfg.numVaults - 1));
    d.bank = static_cast<std::uint8_t>((addr >> _bankShift) &
                                       (cfg.banksPerVault() - 1));
    d.quadrant = static_cast<std::uint8_t>(d.vault /
                                           cfg.vaultsPerQuadrant());

    // Byte address local to the (vault, bank).
    Addr bank_local;
    if (_scheme == MappingScheme::ContiguousVault) {
        // Low bits below the bank field are the bank-local address.
        bank_local = addr & ((Addr(1) << _bankShift) - 1);
    } else {
        // Interleaved: upper bits select a max-block-sized group, low
        // bits the offset within the block.
        const Addr group = addr >> _rowShift;
        const Addr in_block = addr & (_maxBlock - 1);
        bank_local = group * _maxBlock + in_block;
    }
    d.row = static_cast<std::uint32_t>(bank_local / rowBytes);
    d.column = static_cast<std::uint32_t>(bank_local % rowBytes);
    return d;
}

unsigned
AddressMapper::regionBankSpan(Addr base, Bytes length) const
{
    std::set<std::pair<unsigned, unsigned>> seen;
    for (Addr a = base; a < base + length; a += 16) {
        const DecodedAddress d = decode(a);
        seen.emplace(d.vault, d.bank);
    }
    return static_cast<unsigned>(seen.size());
}

unsigned
AddressMapper::regionVaultSpan(Addr base, Bytes length) const
{
    std::set<unsigned> seen;
    for (Addr a = base; a < base + length; a += 16)
        seen.insert(decode(a).vault);
    return static_cast<unsigned>(seen.size());
}

} // namespace hmcsim
