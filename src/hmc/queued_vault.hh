/**
 * @file
 * Event-driven vault controller reference model.
 *
 * The production `VaultController` books bank and bus time
 * analytically (each request's completion is computed at arrival);
 * that is fast but it deserves justification. This reference model
 * simulates the same vault explicitly -- finite per-bank queues, a
 * FCFS bank scheduler, and a FIFO TSV data-bus arbiter driven by
 * discrete events -- so tests can check the analytic booking against
 * it. The two differ in one documented respect: the analytic model
 * claims bus slots in request-arrival order while this model grants
 * them in data-ready order; for per-bank-serialized traffic the
 * orders coincide (completions match exactly), and for mixed loads
 * the throughput difference is bounded by tests at a few percent.
 * The queued model also covers what the analytic path cannot: finite
 * queue depths with backpressure, which the Fig. 17 discussion
 * speculates about.
 */

#ifndef HMCSIM_HMC_QUEUED_VAULT_HH
#define HMCSIM_HMC_QUEUED_VAULT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "hmc/vault_controller.hh"
#include "mem/backend.hh"
#include "protocol/packet.hh"
#include "protocol/packet_pool.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"

namespace hmcsim
{

/** Configuration of the queued reference vault. */
struct QueuedVaultConfig
{
    VaultConfig base;
    /**
     * Per-bank request-queue depth; 0 = unbounded (matching the
     * analytic model's assumption that backpressure lives in the
     * host-side tag pools).
     */
    unsigned perBankQueueDepth = 0;
    /**
     * Bank-to-bus staging slots; a bank defers its next array access
     * while the stage is full (real controllers backpressure here).
     * 0 = unbounded, which matches the analytic model's booking.
     */
    unsigned busQueueLimit = 0;
    /**
     * Time-stepped batch execution: instead of three events per
     * request (bank done, bank free, bus complete), the vault books
     * each request's whole bank timeline at offer time against an SoA
     * bank-free array, sequences the data bus from a ready-ordered
     * heap, and advances everything under one armed timer that also
     * bulk-steps the storage engine (MemoryBackend::stepBatch --
     * refresh catch-up, NVM drain retirement). Both modes grant the
     * bus by (data-ready time, request age) -- age-based arbitration,
     * so equal-ready ties go to the older request -- which makes
     * completion times bit-identical to the micro model for per-bank-
     * state backends (HMC DRAM, NVM; DDR4's shared-tFAW regulator
     * makes multi-bank accept order significant, so only its single-
     * bank configs match). Requires unbounded queues (backpressure
     * retries need per-event granularity; checked fatal).
     */
    bool batched = false;
};

/** Statistics of the queued vault. */
struct QueuedVaultStats
{
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0; ///< Backpressured at a full queue.
    std::uint64_t completed = 0;
    Tick busBusy = 0;
};

/** The event-driven vault. */
class QueuedVaultController
{
  public:
    /** Called when a request's data has crossed the TSV bus. */
    using CompletionFn = std::function<void(const Packet &, Tick)>;

    QueuedVaultController(const QueuedVaultConfig &cfg,
                          EventQueue &queue, CompletionFn on_complete);

    /**
     * Offer a request to the vault at the current event time.
     * @return false when the target bank's queue is full (the caller
     *         must hold the request and retry -- backpressure).
     */
    bool offer(const Packet &pkt);

    /**
     * Register this vault's model invariants under @p name: per-bank
     * queue occupancy within the configured depth, bank-to-bus stage
     * occupancy within its limit plus one slot per in-flight bank,
     * bank state-machine legality, and completion/acceptance counter
     * sanity. The vault must outlive the registry.
     */
    void registerCheckers(CheckerRegistry &registry,
                          const std::string &name) const;

    const QueuedVaultStats &stats() const { return _stats; }

    /** The vault's storage engine (inspection; tests use this to
     *  observe backend-side batch bookkeeping). */
    const MemoryBackend &backend() const { return *storage; }

    /** Requests currently queued at bank @p idx. */
    std::size_t queueDepth(unsigned idx) const
    {
        return bankQueues.at(idx).size();
    }

  private:
    /** Start the bank access at the head of bank @p idx's queue. */
    void startNext(unsigned bank_idx);

    /** Bank finished its array access; contend for the data bus. */
    void onBankDone(unsigned bank_idx, Packet *pkt,
                    std::uint64_t offer_seq);

    /** Grant the bus to the next waiting transfer, if any. */
    void grantBus();

    /** Queue a grant attempt for the current tick (coalesced). */
    void scheduleGrant();

    /** TSV bus footprint of @p pkt (command beats + aligned data). */
    Bytes busBytesFor(const Packet &pkt) const;

    /** Batched-mode offer: book the bank timeline eagerly. */
    bool offerBatched(const Packet &pkt);

    /** Batched-mode timer body: deliver due completions, bulk-step
     *  the storage engine, sequence newly-safe bus transfers, and
     *  re-arm for the next due tick. Idempotent. */
    void processDue();

    /** Earliest pending batched deadline, or 0 when none pending
     *  (@p any set accordingly). */
    Tick nextDue(bool &any) const;

    /** Guarantee the timer fires no later than @p at. */
    void ensureArmed(Tick at);

    QueuedVaultConfig cfg;
    EventQueue &queue;
    CompletionFn onComplete;

    /**
     * Every queued or in-flight request lives in a pooled slot from
     * offer() until its completion callback returns; queues and event
     * captures hold only pointers, keeping captures inside the Event
     * inline budget (sim/event.hh) and the steady state free of
     * per-request allocation.
     */
    PacketPool pool;

    struct BankState
    {
        bool busy = false;
    };
    std::vector<BankState> bankState;
    /** Storage engine shared with the analytic model's selection
     *  (cfg.base.backend): the two reference implementations always
     *  time the same array. */
    std::unique_ptr<MemoryBackend> storage;
    /** Devirtualized view of `storage` for the default HMC DRAM
     *  array, mirroring VaultController's per-packet fast path;
     *  null for every other backend kind. */
    HmcDramBackend *fastHmc = nullptr;

    /** A request waiting at a bank, stamped with its admission order
     *  (the age the bus arbiter breaks ties with). */
    struct QueuedRequest
    {
        Packet *pkt;
        std::uint64_t offerSeq;
    };
    std::vector<std::deque<QueuedRequest>> bankQueues;

    struct BusRequest
    {
        Packet *pkt;
        Bytes busBytes;
        /** Tick the bank data became ready (= stage-entry time). */
        Tick dataReady;
        std::uint64_t offerSeq;
    };
    /** Waiting transfers in (dataReady, offerSeq) order: entries
     *  arrive in dataReady order, and onBankDone reorders the
     *  equal-dataReady tail by age (offerSeq). */
    std::deque<BusRequest> busQueue;
    bool busBusy = false;
    /** A same-tick grant event is already queued. Grants are never
     *  made inline: every bank-done event of the current tick must
     *  insert first so age arbitration sees the full candidate set
     *  (same-tick scheduled events run after all pre-scheduled
     *  ones). */
    bool grantPending = false;

    // --- Batched mode (cfg.batched) ---------------------------------
    // Same (dataReady, offerSeq) grant order as the micro bus stage,
    // as a heap instead of an incrementally sorted FIFO. Committing
    // the whole dataReady <= now prefix at a timer tick preserves the
    // global order: any future offer at tick t > now yields
    // dataReady > t > now, strictly after everything committed.
    struct BusEntry
    {
        Tick dataReady;
        std::uint64_t offerSeq;
        Packet *pkt;
        Bytes busBytes;
    };
    /** std::push_heap comparator: max-heap inverted into a min-heap
     *  on the (dataReady, offerSeq) key. */
    struct BusEntryAfter
    {
        bool
        operator()(const BusEntry &a, const BusEntry &b) const
        {
            if (a.dataReady != b.dataReady)
                return a.dataReady > b.dataReady;
            return a.offerSeq > b.offerSeq;
        }
    };

    /** When bank b's previously booked access frees the array (SoA:
     *  the only per-bank state the batched offer path touches). */
    std::vector<Tick> lastBankFree;
    /** Transfers waiting for their bank data (min-heap, key above). */
    std::vector<BusEntry> busHeap;
    /** Sequenced bus completions, monotone in `at` because grants
     *  chain busFreeAt. */
    struct PendingDone
    {
        Tick at;
        Packet *pkt;
    };
    std::deque<PendingDone> pendingDone;
    Tick busFreeAt = 0;
    std::uint64_t nextOfferSeq = 0;
    /** Single armed timer: when armed, it fires at armedAt and
     *  armedAt <= every pending deadline (superseded timer events
     *  identify themselves by firing at a tick != armedAt). */
    bool timerArmed = false;
    Tick armedAt = 0;

    QueuedVaultStats _stats;
};

} // namespace hmcsim

#endif // HMCSIM_HMC_QUEUED_VAULT_HH
