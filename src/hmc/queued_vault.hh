/**
 * @file
 * Event-driven vault controller reference model.
 *
 * The production `VaultController` books bank and bus time
 * analytically (each request's completion is computed at arrival);
 * that is fast but it deserves justification. This reference model
 * simulates the same vault explicitly -- finite per-bank queues, a
 * FCFS bank scheduler, and a FIFO TSV data-bus arbiter driven by
 * discrete events -- so tests can check the analytic booking against
 * it. The two differ in one documented respect: the analytic model
 * claims bus slots in request-arrival order while this model grants
 * them in data-ready order; for per-bank-serialized traffic the
 * orders coincide (completions match exactly), and for mixed loads
 * the throughput difference is bounded by tests at a few percent.
 * The queued model also covers what the analytic path cannot: finite
 * queue depths with backpressure, which the Fig. 17 discussion
 * speculates about.
 */

#ifndef HMCSIM_HMC_QUEUED_VAULT_HH
#define HMCSIM_HMC_QUEUED_VAULT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "hmc/vault_controller.hh"
#include "mem/backend.hh"
#include "protocol/packet.hh"
#include "protocol/packet_pool.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"

namespace hmcsim
{

/** Configuration of the queued reference vault. */
struct QueuedVaultConfig
{
    VaultConfig base;
    /**
     * Per-bank request-queue depth; 0 = unbounded (matching the
     * analytic model's assumption that backpressure lives in the
     * host-side tag pools).
     */
    unsigned perBankQueueDepth = 0;
    /**
     * Bank-to-bus staging slots; a bank defers its next array access
     * while the stage is full (real controllers backpressure here).
     * 0 = unbounded, which matches the analytic model's booking.
     */
    unsigned busQueueLimit = 0;
};

/** Statistics of the queued vault. */
struct QueuedVaultStats
{
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0; ///< Backpressured at a full queue.
    std::uint64_t completed = 0;
    Tick busBusy = 0;
};

/** The event-driven vault. */
class QueuedVaultController
{
  public:
    /** Called when a request's data has crossed the TSV bus. */
    using CompletionFn = std::function<void(const Packet &, Tick)>;

    QueuedVaultController(const QueuedVaultConfig &cfg,
                          EventQueue &queue, CompletionFn on_complete);

    /**
     * Offer a request to the vault at the current event time.
     * @return false when the target bank's queue is full (the caller
     *         must hold the request and retry -- backpressure).
     */
    bool offer(const Packet &pkt);

    /**
     * Register this vault's model invariants under @p name: per-bank
     * queue occupancy within the configured depth, bank-to-bus stage
     * occupancy within its limit plus one slot per in-flight bank,
     * bank state-machine legality, and completion/acceptance counter
     * sanity. The vault must outlive the registry.
     */
    void registerCheckers(CheckerRegistry &registry,
                          const std::string &name) const;

    const QueuedVaultStats &stats() const { return _stats; }

    /** Requests currently queued at bank @p idx. */
    std::size_t queueDepth(unsigned idx) const
    {
        return bankQueues.at(idx).size();
    }

  private:
    /** Start the bank access at the head of bank @p idx's queue. */
    void startNext(unsigned bank_idx);

    /** Bank finished its array access; contend for the data bus. */
    void onBankDone(unsigned bank_idx, Packet *pkt);

    /** Grant the bus to the next waiting transfer, if any. */
    void grantBus();

    QueuedVaultConfig cfg;
    EventQueue &queue;
    CompletionFn onComplete;

    /**
     * Every queued or in-flight request lives in a pooled slot from
     * offer() until its completion callback returns; queues and event
     * captures hold only pointers, keeping captures inside the Event
     * inline budget (sim/event.hh) and the steady state free of
     * per-request allocation.
     */
    PacketPool pool;

    struct BankState
    {
        bool busy = false;
    };
    std::vector<BankState> bankState;
    /** Storage engine shared with the analytic model's selection
     *  (cfg.base.backend): the two reference implementations always
     *  time the same array. */
    std::unique_ptr<MemoryBackend> storage;
    /** Devirtualized view of `storage` for the default HMC DRAM
     *  array, mirroring VaultController's per-packet fast path;
     *  null for every other backend kind. */
    HmcDramBackend *fastHmc = nullptr;
    std::vector<std::deque<Packet *>> bankQueues;

    struct BusRequest
    {
        Packet *pkt;
        Bytes busBytes;
    };
    std::deque<BusRequest> busQueue;
    bool busBusy = false;

    QueuedVaultStats _stats;
};

} // namespace hmcsim

#endif // HMCSIM_HMC_QUEUED_VAULT_HH
