#include "hmc/config.hh"

namespace hmcsim
{

HmcConfig
HmcConfig::gen1()
{
    HmcConfig c;
    c.name = "HMC 1.0 (Gen1)";
    c.capacity = 512 * mib;
    c.numDramLayers = 4;
    c.dramLayerGbits = 1;
    c.numVaults = 16;
    c.partitionsPerLayer = 16;
    c.banksPerPartition = 2;
    return c;
}

HmcConfig
HmcConfig::gen2_2GB()
{
    HmcConfig c;
    c.name = "HMC 1.1 (Gen2) 2GB";
    c.capacity = 2 * gib;
    c.numDramLayers = 4;
    c.dramLayerGbits = 4;
    c.numVaults = 16;
    c.partitionsPerLayer = 16;
    c.banksPerPartition = 2;
    return c;
}

HmcConfig
HmcConfig::gen2_4GB()
{
    HmcConfig c;
    c.name = "HMC 1.1 (Gen2) 4GB";
    c.capacity = 4 * gib;
    c.numDramLayers = 8;
    c.dramLayerGbits = 4;
    c.numVaults = 16;
    c.partitionsPerLayer = 16;
    c.banksPerPartition = 2;
    return c;
}

HmcConfig
HmcConfig::hmc2_4GB()
{
    HmcConfig c;
    c.name = "HMC 2.0 4GB";
    c.capacity = 4 * gib;
    c.numDramLayers = 4;
    c.dramLayerGbits = 8;
    c.numVaults = 32;
    c.partitionsPerLayer = 32;
    c.banksPerPartition = 2;
    return c;
}

HmcConfig
HmcConfig::hmc2_8GB()
{
    HmcConfig c;
    c.name = "HMC 2.0 8GB";
    c.capacity = 8 * gib;
    c.numDramLayers = 8;
    c.dramLayerGbits = 8;
    c.numVaults = 32;
    c.partitionsPerLayer = 32;
    c.banksPerPartition = 2;
    return c;
}

} // namespace hmcsim
