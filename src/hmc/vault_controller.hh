/**
 * @file
 * Vault controller model.
 *
 * Each of the 16 vaults has a private memory controller in the logic
 * layer connected to its DRAM partitions by 32 data TSVs with a 32 B
 * access granularity and roughly 10 GB/s of internal bandwidth
 * (Sec. II, [26]). The controller keeps per-bank state so distinct
 * banks overlap (BLP) while the shared TSV data bus serializes data
 * transfer; that combination produces the paper's two key vault-level
 * effects: one bank sustains only a few GB/s, and a vault saturates
 * near 10 GB/s once ~8 banks are busy (Figs. 6, 7, 18).
 */

#ifndef HMCSIM_HMC_VAULT_CONTROLLER_HH
#define HMCSIM_HMC_VAULT_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/bank.hh"
#include "sim/check.hh"
#include "sim/stat_registry.hh"
#include "dram/timings.hh"
#include "link/link.hh"
#include "mem/backend.hh"
#include "mem/hmc_dram_backend.hh"
#include "protocol/packet.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Per-vault configuration knobs. */
struct VaultConfig
{
    unsigned numBanks = 16;
    DramTimings timings = hmcGen2Timings();
    PagePolicy policy = PagePolicy::Closed;
    /** Fixed controller pipeline latency per request (decode, queue
     *  management, TSV crossing). */
    Tick controllerLatency = nsToTicks(16.0);
    /** Extra data-bus beats charged per access (command slot). */
    unsigned commandBeats = 1;
    /** In-controller ALU time for atomic read-modify-write commands
     *  (the PIM-flavored HMC commands; HMC 2.0 widens this set). */
    Tick atomicLatency = nsToTicks(4.0);
    /**
     * Enable the refresh engine. Off by default: the paper's 20 s
     * bandwidth measurements fold the ~2 % refresh derating into the
     * calibrated link/DRAM rates; turn it on to study the refresh-
     * rate sensitivity explicitly (Sec. I: higher temperatures
     * trigger more frequent refresh, costing bandwidth and power).
     */
    bool refreshEnabled = false;
    /** Refresh-rate multiplier: 1 = nominal, 2 = hot (>85 C) rate. */
    double refreshMultiplier = 1.0;
    /**
     * Storage engine behind the vault controller: the HMC DRAM bank
     * array (default, byte-identical to the pre-interface model), an
     * open-page DDR4 channel, or an NVM tier (mem/backend.hh,
     * docs/backends.md).
     */
    MemoryBackendConfig backend;
};

/** Aggregate statistics of one vault. */
struct VaultStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t atomics = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t refreshes = 0;
    Bytes payloadBytes = 0;
};

/**
 * Analytic vault controller: given a request's arrival time, computes
 * when its response is ready, booking the bank and the TSV data bus.
 */
class VaultController
{
  public:
    explicit VaultController(const VaultConfig &cfg);

    /**
     * Service one request.
     * @param pkt Decoded request (bank/row fields must be filled in).
     * @param arrival Time the request enters the vault controller.
     * @return Time the response packet is ready to leave the vault.
     */
    Tick service(const Packet &pkt, Tick arrival);

    /** As above, but also stamps pkt.tBankStart with the time the
     *  bank began the access (lifecycle tracing, trace/lifecycle.hh).
     *  Non-const lvalue packets pick this overload automatically. */
    Tick service(Packet &pkt, Tick arrival);

    /** Advance all banks through a refresh cycle (maintenance hook). */
    void refreshAll(Tick at);

    /**
     * Reconfigure the refresh engine, e.g. when the thermal model
     * reports a temperature requiring a faster refresh rate.
     */
    void setRefresh(bool enabled, double multiplier);

    /** Current per-bank refresh interval in ticks (0 if disabled). */
    Tick refreshInterval() const;

    const VaultStats &
    stats() const
    {
        // The refresh count lives in the storage engine; fold it in
        // on read so service() stays free of per-packet virtual
        // bookkeeping calls (bench_simulator_perf's dispatch guard).
        _stats.refreshes = storage->refreshes();
        return _stats;
    }

    /**
     * Register this vault's counters under @p path. The vault must
     * outlive the registry.
     */
    void registerStats(StatRegistry &registry, const StatPath &path) const;

    /**
     * Register this vault's model invariants (bank state-machine
     * legality, counter sanity) under @p name. The vault must outlive
     * the registry.
     */
    void registerCheckers(CheckerRegistry &registry,
                          const std::string &name) const;

    /** The storage engine behind this vault. */
    const MemoryBackend &backend() const { return *storage; }

    /** Utilization of the TSV data bus over @p elapsed ticks. */
    double busUtilization(Tick elapsed) const;

    /**
     * Become a state copy of @p src for simulator fork
     * (sim/snapshot.hh): backend bank/drain state, the TSV-bus
     * horizon, and counters. Must run on a freshly built vault with
     * identical configuration; the constructor-set storage/busTimings/
     * fastHmc pointers keep pointing at this vault's own storage.
     * Read-only on @p src.
     */
    void
    restoreFrom(const VaultController &src)
    {
        storage->restoreFrom(*src.storage);
        dataBus = src.dataBus;
        _stats = src._stats;
    }

    void reset();

  private:
    /** Shared service body; reports when the bank began the access. */
    Tick serviceTimed(const Packet &pkt, Tick arrival,
                      Tick &bank_start);

    VaultConfig cfg;
    /** Storage engine selected by cfg.backend (mem/backend.hh). */
    std::unique_ptr<MemoryBackend> storage;
    /** Devirtualized view of `storage` when it is the default HMC
     *  DRAM array: the per-packet accept() then inlines into
     *  serviceTimed instead of going through the vtable, keeping the
     *  interface inside bench_simulator_perf's <2% dispatch budget.
     *  Null for every other backend kind. */
    HmcDramBackend *fastHmc = nullptr;
    /** storage->timings(), hoisted at construction: every backend
     *  returns a reference to a member that never moves, and the
     *  service hot path reads it per packet. */
    const DramTimings *busTimings;
    ThroughputRegulator dataBus;
    mutable VaultStats _stats;
};

} // namespace hmcsim

#endif // HMCSIM_HMC_VAULT_CONTROLLER_HH
