/**
 * @file
 * HMC internal address mapping (Sec. II-C and Fig. 3 of the paper).
 *
 * HMC interleaves 16 B blocks low-order across vaults, then banks:
 *
 *   [33:32] ignored | row bits | bank (4b) | vault (4b) | block | [3:0]
 *
 * where the "block" field width is set by the Address Mapping Mode
 * Register (maximum block size 16/32/64/128 B; default 0x2 = 128 B).
 * The vault field's two high bits select the quadrant and the two low
 * bits the vault within it.
 *
 * Consequences encoded here and exercised by tests:
 *  - sequential blocks spread across all 16 vaults first, then banks;
 *  - a 4 KB OS page spans 2 banks in every vault (128 B mode);
 *  - up to 128 serially-allocated pages can be accessed with maximum
 *    bank-level parallelism (16 vaults x 8 page slots).
 */

#ifndef HMCSIM_HMC_ADDRESS_MAPPER_HH
#define HMCSIM_HMC_ADDRESS_MAPPER_HH

#include <cstdint>

#include "hmc/config.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Decoded location of an address inside the cube. */
struct DecodedAddress
{
    std::uint8_t quadrant;
    std::uint8_t vault;    ///< Global vault id (0..numVaults-1).
    std::uint8_t bank;     ///< Bank within the vault.
    std::uint32_t row;     ///< DRAM row within the bank.
    std::uint32_t column;  ///< Byte offset within the row.
};

/** Maximum block size values accepted by the mode register. */
enum class MaxBlockSize : std::uint16_t
{
    B16 = 16,
    B32 = 32,
    B64 = 64,
    B128 = 128, ///< Default (mode register 0x2), used by the paper.
};

/**
 * Interleaving order of the vault/bank fields. The HMC specification
 * lets the user fine-tune the mapping by moving the bit positions
 * (Sec. II-C); the two useful orders are:
 *
 *  - VaultFirst (the device default the paper studies): sequential
 *    blocks spread across vaults, then banks -- maximum parallelism
 *    for streams.
 *  - BankFirst: sequential blocks fill the banks of one vault before
 *    moving on (vault and bank fields swapped in the low bits).
 *  - ContiguousVault: the vault is selected by the *top* address
 *    bits, so each vault owns a contiguous 256 MB region -- the
 *    "allocate data sequentially within a vault" layout the paper
 *    warns against (Sec. IV-D): any array smaller than a vault then
 *    lives behind a single 10 GB/s controller.
 */
enum class MappingScheme : std::uint8_t
{
    VaultFirst,
    BankFirst,
    ContiguousVault,
};

const char *mappingSchemeName(MappingScheme scheme);

/** Low-order-interleaved HMC address mapper. */
class AddressMapper
{
  public:
    /**
     * @param cfg Device structure (vault/bank counts, capacity).
     * @param max_block Address Mapping Mode Register setting.
     * @param row_bytes DRAM row (page) size; 256 B in HMC.
     * @param scheme Field order (VaultFirst is the device default).
     */
    AddressMapper(const HmcConfig &cfg,
                  MaxBlockSize max_block = MaxBlockSize::B128,
                  Bytes row_bytes = 256,
                  MappingScheme scheme = MappingScheme::VaultFirst);

    /**
     * Decode a cube address into its structural coordinates.
     *
     * This is the hot per-request path: every field extraction runs
     * off the plan precompiled by the constructor (shift/mask tables,
     * see buildPlan), so no division or modulo survives at decode
     * time for power-of-two geometries. decodeReference() keeps the
     * textbook div/mod formulation for differential testing.
     */
    DecodedAddress
    decode(Addr addr) const
    {
        // The request header carries 34 bits; bits above the
        // implemented capacity are ignored (Sec. II-C).
        addr &= _addrMask;

        DecodedAddress d;
        d.vault = static_cast<std::uint8_t>((addr >> _vaultShift) &
                                            _vaultFieldMask);
        d.bank = static_cast<std::uint8_t>((addr >> _bankShift) &
                                           _bankFieldMask);
        d.quadrant = _quadPow2
                         ? static_cast<std::uint8_t>(d.vault >> _quadShift)
                         : static_cast<std::uint8_t>(d.vault / _quadDiv);

        // Byte address local to the (vault, bank). Interleaved
        // schemes concatenate the group and in-block fields; the
        // block size is always a power of two, so the multiply-add
        // is a shift-or.
        const Addr bank_local =
            _contiguous ? (addr & _bankLocalMask)
                        : (((addr >> _rowShift) << _blockShift) |
                           (addr & _blockMask));
        if (_rowPow2) {
            d.row = static_cast<std::uint32_t>(bank_local >> _rowByteShift);
            d.column = static_cast<std::uint32_t>(bank_local & _rowByteMask);
        } else {
            d.row = static_cast<std::uint32_t>(bank_local / rowBytes);
            d.column = static_cast<std::uint32_t>(bank_local % rowBytes);
        }
        return d;
    }

    /**
     * Reference decode: the pre-plan div/mod formulation, kept so the
     * randomized differential test can assert the precompiled plan is
     * bit-identical across schemes, block sizes, and row sizes.
     */
    DecodedAddress decodeReference(Addr addr) const;

    /** First bit of the vault field (4 + block offset bits). */
    unsigned vaultShift() const { return _vaultShift; }
    /** First bit of the bank field. */
    unsigned bankShift() const { return _bankShift; }
    /** First bit of the upper (row-forming) field. */
    unsigned rowShift() const { return _rowShift; }
    /** Number of vault-select bits. */
    unsigned vaultBits() const { return _vaultBits; }
    /** Number of bank-select bits. */
    unsigned bankBits() const { return _bankBits; }
    /** Usable address bits (34 in the header; high bits ignored). */
    unsigned addressBits() const { return _addrBits; }
    /** Configured maximum block size in bytes. */
    Bytes maxBlockBytes() const { return _maxBlock; }
    /** Configured interleaving scheme. */
    MappingScheme scheme() const { return _scheme; }

    /** Mask selecting only implemented address bits. */
    Addr
    addressMask() const
    {
        return (Addr(1) << _addrBits) - 1;
    }

    /**
     * Number of distinct (vault, bank) pairs touched by a contiguous
     * region, e.g. an OS page. Used to verify the paper's page-layout
     * claims.
     */
    unsigned regionBankSpan(Addr base, Bytes length) const;

    /** Number of distinct vaults touched by a contiguous region. */
    unsigned regionVaultSpan(Addr base, Bytes length) const;

  private:
    /** Reduce the decode arithmetic to shift/mask tables. */
    void buildPlan();

    HmcConfig cfg;
    Bytes _maxBlock;
    Bytes rowBytes;
    MappingScheme _scheme;
    unsigned _addrBits;
    unsigned _vaultShift;
    unsigned _vaultBits;
    unsigned _bankShift;
    unsigned _bankBits;
    unsigned _rowShift;

    // Precompiled decode plan (buildPlan). Power-of-two geometries --
    // every Table I device -- decode with shifts and masks only; the
    // div/mod fallbacks cover exotic row sizes or quadrant counts.
    Addr _addrMask = 0;
    Addr _vaultFieldMask = 0;
    Addr _bankFieldMask = 0;
    Addr _blockMask = 0;
    Addr _bankLocalMask = 0;
    Addr _rowByteMask = 0;
    unsigned _blockShift = 0;
    unsigned _quadShift = 0;
    unsigned _quadDiv = 1;
    unsigned _rowByteShift = 0;
    bool _quadPow2 = false;
    bool _rowPow2 = false;
    bool _contiguous = false;
};

} // namespace hmcsim

#endif // HMCSIM_HMC_ADDRESS_MAPPER_HH
