#include "hmc/device.hh"

#include "protocol/fields.hh"
#include "sim/logging.hh"

namespace hmcsim
{

HmcDevice::HmcDevice(const HmcDeviceConfig &cfg)
    : cfg([&] {
          HmcDeviceConfig c = cfg;
          c.vault.numBanks = cfg.structure.banksPerVault();
          return c;
      }()),
      _mapper(cfg.structure, cfg.maxBlock, cfg.vault.timings.rowBytes,
              cfg.mapping)
{
    vaults.reserve(cfg.structure.numVaults);
    for (unsigned i = 0; i < cfg.structure.numVaults; ++i)
        vaults.push_back(std::make_unique<VaultController>(this->cfg.vault));
}

Tick
HmcDevice::handleRequest(Packet &pkt, Tick arrival)
{
    pkt.tVaultArrive = arrival;

    // Link-layer verification (Fig. 14's RX mirror inside the cube):
    // the CRC must match and the header must decode back to the
    // packet the controller stamped. A mismatch here is a simulator
    // bug, not a modeled lane error -- lane errors are absorbed by
    // the retry machinery before reaching this point.
    if (pkt.headerBits != 0) {
        if (packetCrc(pkt, pkt.headerBits) != pkt.tailCrc)
            panic("packet %llu failed CRC at the cube",
                  static_cast<unsigned long long>(pkt.id));
        const RequestHeader header = decodeRequestHeader(pkt.headerBits);
        if (header.adrs != (pkt.addr & ((Addr(1) << 34) - 1)) ||
            commandClass(header.cmd) != pkt.cmd)
            panic("packet %llu header mismatch at the cube",
                  static_cast<unsigned long long>(pkt.id));
    }

    const DecodedAddress d = _mapper.decode(pkt.addr);
    pkt.quadrant = d.quadrant;
    pkt.vault = d.vault;
    pkt.bank = d.bank;
    pkt.row = d.row;

    ++_stats.requests;
    if (pkt.cmd == Command::Read || pkt.cmd == Command::Atomic)
        _stats.readPayloadBytes += pkt.payload;
    if (pkt.cmd == Command::Write || pkt.cmd == Command::Atomic)
        _stats.writePayloadBytes += pkt.payload;

    if (thermalShutdown) {
        // The cube refuses the access; the response header/tail tells
        // the host a thermal failure occurred (Sec. IV-C).
        pkt.thermalFailure = true;
        pkt.tDramDone = arrival + cfg.responsePathLatency;
        return pkt.tDramDone;
    }

    // Quadrant routing: local vaults answer faster than remote ones.
    const unsigned ingress = ingressQuadrant(pkt.link);
    Tick routed = arrival + cfg.quadrantLocalLatency;
    if (ingress == d.quadrant) {
        ++_stats.localQuadrantHits;
    } else {
        routed += cfg.quadrantHopLatency;
    }

    const Tick vault_done = vaults[d.vault]->service(pkt, routed);
    pkt.tDramDone = vault_done;

    // Response crosses the crossbar back to the ingress quadrant.
    Tick response_ready = vault_done + cfg.responsePathLatency;
    if (ingress != d.quadrant)
        response_ready += cfg.quadrantHopLatency;
    return response_ready;
}

void
HmcDevice::registerStats(StatRegistry &registry,
                         const StatPath &path) const
{
    registry.addValue((path / "requests").str(),
                      "requests accepted by the cube",
                      &_stats.requests);
    registry.addValue((path / "local_quadrant_hits").str(),
                      "requests served by the ingress quadrant",
                      &_stats.localQuadrantHits);
    registry.addValue((path / "read_payload_bytes").str(),
                      "read payload bytes", &_stats.readPayloadBytes);
    registry.addValue((path / "write_payload_bytes").str(),
                      "write payload bytes", &_stats.writePayloadBytes);
    for (unsigned i = 0; i < numVaults(); ++i)
        vaults[i]->registerStats(registry,
                                 path / ("vault" + std::to_string(i)));
}

void
HmcDevice::registerCheckers(CheckerRegistry &registry,
                            const std::string &name) const
{
    for (unsigned i = 0; i < numVaults(); ++i)
        vaults[i]->registerCheckers(registry,
                                    name + ".vault" + std::to_string(i));
}

void
HmcDevice::applyTemperature(double temperature_c)
{
    const double multiplier =
        temperature_c > hotRefreshThresholdC ? 2.0 : 1.0;
    for (auto &vault : vaults)
        vault->setRefresh(true, multiplier);
}

void
HmcDevice::reset()
{
    for (auto &vault : vaults)
        vault->reset();
    _stats = HmcDeviceStats{};
    thermalShutdown = false;
}

} // namespace hmcsim
