#include "hmc/chain.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hmcsim
{

CubeChain::CubeChain(const CubeChainConfig &cfg)
    : cfg(cfg), failed(cfg.numCubes, false)
{
    if (cfg.numCubes == 0 || cfg.numCubes > 8)
        fatal("chain supports 1..8 cubes (got %u)", cfg.numCubes);

    for (unsigned i = 0; i < cfg.numCubes; ++i)
        cubes.push_back(std::make_unique<HmcDevice>(cfg.cube));

    LinkConfig link;
    link.numLinks = 1;
    link.lanesPerLink = 8;
    link.gbpsPerLane = 15.0;
    link.protocolEfficiency =
        cfg.cubeLinkBytesPerSecond / link.rawLinkBytesPerSecond();
    link.perPacketOverheadBytes = 16;
    for (unsigned i = 0; i + 1 < cfg.numCubes; ++i) {
        linksUp.push_back(
            std::make_unique<LinkDirection>(link, nsToTicks(10.0),
                                            0xC0A1 + i));
        linksDown.push_back(
            std::make_unique<LinkDirection>(link, nsToTicks(10.0),
                                            0xC0B1 + i));
    }
}

Bytes
CubeChain::capacity() const
{
    return cfg.cube.structure.capacity * cfg.numCubes;
}

unsigned
CubeChain::targetCube(Addr addr) const
{
    return static_cast<unsigned>(
        (addr / cfg.cube.structure.capacity) % cfg.numCubes);
}

bool
CubeChain::pathClear(bool from_front, unsigned target,
                     unsigned &hops) const
{
    if (from_front) {
        // Forwarded by cubes 0..target-1.
        hops = target;
        for (unsigned i = 0; i < target; ++i) {
            if (failed[i])
                return false;
        }
        return true;
    }
    const unsigned last = numCubes() - 1;
    hops = last - target;
    for (unsigned i = last; i > target; --i) {
        if (failed[i])
            return false;
    }
    return true;
}

Tick
CubeChain::traverse(bool from_front, unsigned target, Tick start,
                    Bytes bytes, bool toward_cube)
{
    Tick t = start;
    if (from_front) {
        if (toward_cube) {
            for (unsigned i = 0; i < target; ++i)
                t = linksUp[i]->transmit(t + cfg.passThroughLatency,
                                         bytes);
        } else {
            for (unsigned i = target; i > 0; --i)
                t = linksDown[i - 1]->transmit(
                    t + cfg.passThroughLatency, bytes);
        }
    } else {
        const unsigned last = numCubes() - 1;
        if (toward_cube) {
            for (unsigned i = last; i > target; --i)
                t = linksDown[i - 1]->transmit(
                    t + cfg.passThroughLatency, bytes);
        } else {
            for (unsigned i = target; i < last; ++i)
                t = linksUp[i]->transmit(t + cfg.passThroughLatency,
                                         bytes);
        }
    }
    return t;
}

Tick
CubeChain::handleRequest(Packet &pkt, Tick arrival,
                         ChainRouteInfo *route)
{
    const unsigned target = targetCube(pkt.addr);

    unsigned hops_front = 0, hops_back = 0;
    const bool front_ok = pathClear(true, target, hops_front);
    const bool back_ok =
        numCubes() > 1 ? pathClear(false, target, hops_back) : false;

    ChainRouteInfo info;
    if (!front_ok && !back_ok) {
        info.reachable = false;
        ++numUnreachable;
        pkt.thermalFailure = true;
        if (route)
            *route = info;
        return arrival + cfg.passThroughLatency;
    }

    bool from_front;
    if (front_ok && back_ok) {
        from_front = hops_front <= hops_back;
    } else {
        from_front = front_ok;
        // Rerouted if the shorter side was the blocked one.
        const unsigned chosen = front_ok ? hops_front : hops_back;
        const unsigned other = front_ok ? hops_back : hops_front;
        info.rerouted = chosen > other;
    }
    info.hops = from_front ? hops_front : hops_back;
    if (info.rerouted)
        ++numRerouted;

    // Request hops toward the target cube...
    const Tick at_cube =
        traverse(from_front, target, arrival, pkt.reqBytes(), true);
    // ...the target services it...
    const Tick resp_ready = cubes[target]->handleRequest(pkt, at_cube);
    // ...and the response hops back.
    const Tick at_host = traverse(from_front, target, resp_ready,
                                  pkt.respBytes(), false);
    if (route)
        *route = info;
    return at_host;
}

void
CubeChain::setCubeFailed(unsigned cube_idx, bool is_failed)
{
    failed.at(cube_idx) = is_failed;
    cubes.at(cube_idx)->setThermalShutdown(is_failed);
}

bool
CubeChain::reachable(unsigned cube_idx) const
{
    unsigned hops = 0;
    if (pathClear(true, cube_idx, hops))
        return true;
    return numCubes() > 1 && pathClear(false, cube_idx, hops);
}

void
CubeChain::registerStats(StatRegistry &registry,
                         const StatPath &path) const
{
    registry.addValue((path / "unreachable_requests").str(),
                      "requests with no healthy path",
                      &numUnreachable);
    registry.addValue((path / "rerouted_requests").str(),
                      "requests routed around a failed cube",
                      &numRerouted);
    for (unsigned i = 0; i < numCubes(); ++i)
        cubes[i]->registerStats(registry,
                                path / ("cube" + std::to_string(i)));
}

} // namespace hmcsim
