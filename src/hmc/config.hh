/**
 * @file
 * Structural configuration of HMC devices (Table I of the paper).
 *
 * Encodes the published properties of each HMC generation and derives
 * the quantities the paper computes from them: bank counts (Eq. 1),
 * partition/bank sizes, and the addressable hierarchy used by the
 * address mapper.
 */

#ifndef HMCSIM_HMC_CONFIG_HH
#define HMCSIM_HMC_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace hmcsim
{

/** Static structural description of one HMC device. */
struct HmcConfig
{
    std::string name;
    /** Total DRAM capacity in bytes. */
    Bytes capacity = 4 * gib;
    /** Number of stacked DRAM dies. */
    unsigned numDramLayers = 8;
    /** Size of one DRAM die in gigabits. */
    unsigned dramLayerGbits = 4;
    /** Quadrants per device (always 4). */
    unsigned numQuadrants = 4;
    /** Vertical vaults per device. */
    unsigned numVaults = 16;
    /** DRAM partitions per layer (one per vault). */
    unsigned partitionsPerLayer = 16;
    /** Independent banks inside one DRAM partition. */
    unsigned banksPerPartition = 2;

    /** Vaults sharing one external link's quadrant. */
    unsigned
    vaultsPerQuadrant() const
    {
        return numVaults / numQuadrants;
    }

    /** Eq. 1: layers x partitions/layer x banks/partition. */
    unsigned
    numBanks() const
    {
        return numDramLayers * partitionsPerLayer * banksPerPartition;
    }

    /** Banks addressable inside one vault. */
    unsigned
    banksPerVault() const
    {
        return numBanks() / numVaults;
    }

    /** Capacity of one bank in bytes. */
    Bytes
    bankBytes() const
    {
        return capacity / numBanks();
    }

    /** Capacity of one DRAM partition in bytes. */
    Bytes
    partitionBytes() const
    {
        return bankBytes() * banksPerPartition;
    }

    /** Capacity of one vault in bytes. */
    Bytes
    vaultBytes() const
    {
        return capacity / numVaults;
    }

    // ---- Table I instances -------------------------------------------

    /** HMC 1.0 (Gen1): 0.5 GB, 4 x 1 Gb layers, 128 banks. */
    static HmcConfig gen1();

    /** HMC 1.1 (Gen2) 2 GB variant: 4 x 4 Gb layers, 128 banks. */
    static HmcConfig gen2_2GB();

    /**
     * HMC 1.1 (Gen2) 4 GB variant: 8 x 4 Gb layers, 256 banks.
     * This is the device on the AC-510 used in every experiment.
     */
    static HmcConfig gen2_4GB();

    /** HMC 2.0, 4 GB variant: 32 vaults. */
    static HmcConfig hmc2_4GB();

    /** HMC 2.0, 8 GB variant: 32 vaults, 8 Gb layers. */
    static HmcConfig hmc2_8GB();
};

} // namespace hmcsim

#endif // HMCSIM_HMC_CONFIG_HH
