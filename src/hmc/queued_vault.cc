// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
#include "hmc/queued_vault.hh"

#include <memory>
#include <sstream>
#include <utility>

#include "dram/bank.hh"
#include "sim/logging.hh"

namespace hmcsim
{

QueuedVaultController::QueuedVaultController(const QueuedVaultConfig &cfg,
                                             EventQueue &queue,
                                             CompletionFn on_complete)
    : cfg(cfg),
      queue(queue),
      onComplete(std::move(on_complete)),
      bankState(cfg.base.numBanks),
      storage(makeMemoryBackend(
          BackendEnvironment{cfg.base.numBanks, cfg.base.timings,
                             cfg.base.policy, cfg.base.refreshEnabled,
                             cfg.base.refreshMultiplier},
          cfg.base.backend)),
      bankQueues(cfg.base.numBanks)
{
    if (storage->kind() == BackendKind::HmcDram)
        fastHmc = static_cast<HmcDramBackend *>(storage.get());
}

void
QueuedVaultController::registerCheckers(CheckerRegistry &registry,
                                        const std::string &name) const
{
    registry.addLambda(name + ".queues", [this](Tick) -> std::string {
        if (cfg.perBankQueueDepth != 0) {
            for (std::size_t b = 0; b < bankQueues.size(); ++b) {
                if (bankQueues[b].size() > cfg.perBankQueueDepth) {
                    std::ostringstream out;
                    out << "bank " << b << " queue holds "
                        << bankQueues[b].size()
                        << " requests, limit "
                        << cfg.perBankQueueDepth;
                    return out.str();
                }
            }
        }
        // Admission happens at bank-access start, but every in-flight
        // bank access later deposits into the stage without another
        // check -- occupancy may legitimately reach limit-1 plus one
        // entry per bank. Anything above that is a lost-wakeup or
        // double-push bug.
        if (cfg.busQueueLimit != 0 &&
            busQueue.size() + (busBusy ? 1u : 0u) >
                cfg.busQueueLimit + bankQueues.size()) {
            std::ostringstream out;
            out << "bus stage holds " << busQueue.size()
                << " waiting + " << (busBusy ? 1 : 0)
                << " in flight, beyond limit " << cfg.busQueueLimit
                << " + " << bankQueues.size() << " banks";
            return out.str();
        }
        return {};
    });
    storage->registerCheckers(registry, name);
    registry.addLambda(name + ".stats", [this](Tick) -> std::string {
        if (_stats.completed > _stats.accepted) {
            std::ostringstream out;
            out << _stats.completed << " completions for only "
                << _stats.accepted << " accepted requests";
            return out.str();
        }
        return {};
    });
    // Pool conservation: one live slot per accepted-but-uncompleted
    // request (queued at a bank, in the bank array, or staged for the
    // bus). Drift means a leaked or double-released slot.
    registry.addLambda(name + ".packet_pool",
                       [this](Tick) -> std::string {
        const std::uint64_t outstanding =
            _stats.accepted - _stats.completed;
        if (pool.live() == outstanding)
            return {};
        std::ostringstream out;
        out << pool.live() << " pooled packets live but " << outstanding
            << " accepted requests uncompleted";
        return out.str();
    });
}

bool
QueuedVaultController::offer(const Packet &pkt)
{
    const unsigned bank_idx = pkt.bank;
    if (cfg.perBankQueueDepth != 0 &&
        bankQueues.at(bank_idx).size() >= cfg.perBankQueueDepth) {
        ++_stats.rejected;
        return false;
    }
    ++_stats.accepted;
    Packet *slot = pool.acquire();
    *slot = pkt;
    slot->tVaultArrive = queue.now();
    bankQueues[bank_idx].push_back(slot);
    if (!bankState[bank_idx].busy)
        startNext(bank_idx);
    return true;
}

void
QueuedVaultController::startNext(unsigned bank_idx)
{
    auto &bank_queue = bankQueues[bank_idx];
    // Defer while the bank-to-bus stage is full: the data would have
    // nowhere to go (grantBus() re-sweeps the banks as it drains).
    const bool stage_full =
        cfg.busQueueLimit != 0 &&
        busQueue.size() + (busBusy ? 1u : 0u) >= cfg.busQueueLimit;
    if (bank_queue.empty() || stage_full) {
        bankState[bank_idx].busy = false;
        return;
    }
    bankState[bank_idx].busy = true;
    Packet *pkt = bank_queue.front();
    bank_queue.pop_front();

    // A request that deferred on the bus stage starts now, not at its
    // (past) arrival time.
    const Tick earliest = pkt->tVaultArrive + cfg.base.controllerLatency;
    const Tick ready = earliest > queue.now() ? earliest : queue.now();
    BankAccessResult res = fastHmc ? fastHmc->accept(*pkt, ready)
                                   : storage->accept(*pkt, ready);
    pkt->tBankStart = res.start;
    if (pkt->cmd == Command::Atomic)
        res.dataReady += cfg.base.atomicLatency;

    queue.schedule(res.dataReady, [this, bank_idx, pkt] {
        onBankDone(bank_idx, pkt);
    });
    queue.schedule(res.bankFree, [this, bank_idx] {
        startNext(bank_idx);
    });
}

void
QueuedVaultController::onBankDone(unsigned bank_idx, Packet *pkt)
{
    (void)bank_idx;
    const DramTimings &t = storage->timings();
    const Bytes beat_span = (pkt->addr % t.beatBytes) + pkt->payload;
    const Bytes bus_bytes =
        (t.beats(beat_span) + cfg.base.commandBeats) * t.beatBytes;
    busQueue.push_back({pkt, bus_bytes});
    grantBus();
}

void
QueuedVaultController::grantBus()
{
    if (busBusy || busQueue.empty())
        return;
    busBusy = true;
    BusRequest req = std::move(busQueue.front());
    busQueue.pop_front();

    const DramTimings &t = storage->timings();
    const double bytes_per_ps = static_cast<double>(t.beatBytes) /
                                static_cast<double>(t.tBeat);
    const Tick duration = static_cast<Tick>(
        static_cast<double>(req.busBytes) / bytes_per_ps);
    _stats.busBusy += duration;

    queue.scheduleIn(duration, [this, pkt = req.pkt] {
        ++_stats.completed;
        onComplete(*pkt, queue.now());
        pool.release(pkt);
        busBusy = false;
        grantBus();
        // The stage drained: wake any banks that deferred on it.
        if (cfg.busQueueLimit != 0) {
            for (unsigned b = 0; b < bankState.size(); ++b) {
                if (!bankState[b].busy && !bankQueues[b].empty())
                    startNext(b);
            }
        }
    });
}

} // namespace hmcsim
