// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
#include "hmc/queued_vault.hh"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "dram/bank.hh"
#include "sim/logging.hh"

namespace hmcsim
{

QueuedVaultController::QueuedVaultController(const QueuedVaultConfig &cfg,
                                             EventQueue &queue,
                                             CompletionFn on_complete)
    : cfg(cfg),
      queue(queue),
      onComplete(std::move(on_complete)),
      bankState(cfg.base.numBanks),
      storage(makeMemoryBackend(
          BackendEnvironment{cfg.base.numBanks, cfg.base.timings,
                             cfg.base.policy, cfg.base.refreshEnabled,
                             cfg.base.refreshMultiplier},
          cfg.base.backend)),
      bankQueues(cfg.base.numBanks)
{
    if (storage->kind() == BackendKind::HmcDram)
        fastHmc = static_cast<HmcDramBackend *>(storage.get());
    if (cfg.batched) {
        // Backpressure needs per-event retry granularity, which is
        // exactly what batching removes. Config error, not a hot path.
        // lint:allow(hot-check)
        HMCSIM_CHECK(cfg.perBankQueueDepth == 0 &&
                         cfg.busQueueLimit == 0,
                     "batched vault stepping requires unbounded "
                     "queues (finite depths need per-event "
                     "backpressure retries)");
        lastBankFree.assign(cfg.base.numBanks, 0);
    }
}

void
QueuedVaultController::registerCheckers(CheckerRegistry &registry,
                                        const std::string &name) const
{
    registry.addLambda(name + ".queues", [this](Tick) -> std::string {
        if (cfg.perBankQueueDepth != 0) {
            for (std::size_t b = 0; b < bankQueues.size(); ++b) {
                if (bankQueues[b].size() > cfg.perBankQueueDepth) {
                    std::ostringstream out;
                    out << "bank " << b << " queue holds "
                        << bankQueues[b].size()
                        << " requests, limit "
                        << cfg.perBankQueueDepth;
                    return out.str();
                }
            }
        }
        // Admission happens at bank-access start, but every in-flight
        // bank access later deposits into the stage without another
        // check -- occupancy may legitimately reach limit-1 plus one
        // entry per bank. Anything above that is a lost-wakeup or
        // double-push bug.
        if (cfg.busQueueLimit != 0 &&
            busQueue.size() + (busBusy ? 1u : 0u) >
                cfg.busQueueLimit + bankQueues.size()) {
            std::ostringstream out;
            out << "bus stage holds " << busQueue.size()
                << " waiting + " << (busBusy ? 1 : 0)
                << " in flight, beyond limit " << cfg.busQueueLimit
                << " + " << bankQueues.size() << " banks";
            return out.str();
        }
        return {};
    });
    storage->registerCheckers(registry, name);
    registry.addLambda(name + ".stats", [this](Tick) -> std::string {
        if (_stats.completed > _stats.accepted) {
            std::ostringstream out;
            out << _stats.completed << " completions for only "
                << _stats.accepted << " accepted requests";
            return out.str();
        }
        return {};
    });
    // Batched-mode accounting: every accepted request is exactly one
    // of completed / waiting for bank data (heap) / sequenced on the
    // bus (pendingDone); and whenever work is pending, the timer is
    // armed no later than the earliest deadline (a violated bound is
    // a lost wakeup -- the completion would silently never fire).
    if (cfg.batched) {
        registry.addLambda(name + ".batched",
                           [this](Tick) -> std::string {
            const std::uint64_t in_flight =
                busHeap.size() + pendingDone.size();
            if (_stats.accepted != _stats.completed + in_flight) {
                std::ostringstream out;
                out << _stats.accepted << " accepted != "
                    << _stats.completed << " completed + " << in_flight
                    << " in flight";
                return out.str();
            }
            bool any = false;
            const Tick due = nextDue(any);
            if (any && !timerArmed)
                return "pending work but no armed timer (lost wakeup)";
            if (any && armedAt > due) {
                std::ostringstream out;
                out << "timer armed at " << armedAt
                    << ", past the earliest deadline " << due;
                return out.str();
            }
            return {};
        });
    }
    // Pool conservation: one live slot per accepted-but-uncompleted
    // request (queued at a bank, in the bank array, or staged for the
    // bus). Drift means a leaked or double-released slot.
    registry.addLambda(name + ".packet_pool",
                       [this](Tick) -> std::string {
        const std::uint64_t outstanding =
            _stats.accepted - _stats.completed;
        if (pool.live() == outstanding)
            return {};
        std::ostringstream out;
        out << pool.live() << " pooled packets live but " << outstanding
            << " accepted requests uncompleted";
        return out.str();
    });
}

bool
QueuedVaultController::offer(const Packet &pkt)
{
    if (cfg.batched)
        return offerBatched(pkt);
    const unsigned bank_idx = pkt.bank;
    if (cfg.perBankQueueDepth != 0 &&
        bankQueues.at(bank_idx).size() >= cfg.perBankQueueDepth) {
        ++_stats.rejected;
        return false;
    }
    ++_stats.accepted;
    Packet *slot = pool.acquire();
    *slot = pkt;
    slot->tVaultArrive = queue.now();
    bankQueues[bank_idx].push_back({slot, nextOfferSeq++});
    if (!bankState[bank_idx].busy)
        startNext(bank_idx);
    return true;
}

void
QueuedVaultController::startNext(unsigned bank_idx)
{
    auto &bank_queue = bankQueues[bank_idx];
    // Defer while the bank-to-bus stage is full: the data would have
    // nowhere to go (grantBus() re-sweeps the banks as it drains).
    const bool stage_full =
        cfg.busQueueLimit != 0 &&
        busQueue.size() + (busBusy ? 1u : 0u) >= cfg.busQueueLimit;
    if (bank_queue.empty() || stage_full) {
        bankState[bank_idx].busy = false;
        return;
    }
    bankState[bank_idx].busy = true;
    Packet *pkt = bank_queue.front().pkt;
    const std::uint64_t offer_seq = bank_queue.front().offerSeq;
    bank_queue.pop_front();

    // A request that deferred on the bus stage starts now, not at its
    // (past) arrival time.
    const Tick earliest = pkt->tVaultArrive + cfg.base.controllerLatency;
    const Tick ready = earliest > queue.now() ? earliest : queue.now();
    BankAccessResult res = fastHmc ? fastHmc->accept(*pkt, ready)
                                   : storage->accept(*pkt, ready);
    pkt->tBankStart = res.start;
    if (pkt->cmd == Command::Atomic)
        res.dataReady += cfg.base.atomicLatency;

    queue.schedule(res.dataReady, [this, bank_idx, pkt, offer_seq] {
        onBankDone(bank_idx, pkt, offer_seq);
    });
    queue.schedule(res.bankFree, [this, bank_idx] {
        startNext(bank_idx);
    });
}

Bytes
QueuedVaultController::busBytesFor(const Packet &pkt) const
{
    const DramTimings &t = storage->timings();
    const Bytes beat_span = (pkt.addr % t.beatBytes) + pkt.payload;
    return (t.beats(beat_span) + cfg.base.commandBeats) * t.beatBytes;
}

void
QueuedVaultController::onBankDone(unsigned bank_idx, Packet *pkt,
                                  std::uint64_t offer_seq)
{
    (void)bank_idx;
    // Age-based bus arbitration: the stage stays sorted by
    // (dataReady, offerSeq). Entries arrive in dataReady order, so
    // only the equal-dataReady tail (bank-done events of this same
    // tick) can need reordering.
    BusRequest req{pkt, busBytesFor(*pkt), queue.now(), offer_seq};
    auto pos = busQueue.end();
    while (pos != busQueue.begin()) {
        const BusRequest &prev = *std::prev(pos);
        if (prev.dataReady != req.dataReady ||
            prev.offerSeq < req.offerSeq)
            break;
        --pos;
    }
    busQueue.insert(pos, req);
    scheduleGrant();
}

void
QueuedVaultController::scheduleGrant()
{
    if (grantPending)
        return;
    grantPending = true;
    queue.schedule(queue.now(), [this] {
        grantPending = false;
        grantBus();
    });
}

void
QueuedVaultController::grantBus()
{
    if (busBusy || busQueue.empty())
        return;
    busBusy = true;
    BusRequest req = std::move(busQueue.front());
    busQueue.pop_front();

    const DramTimings &t = storage->timings();
    const double bytes_per_ps = static_cast<double>(t.beatBytes) /
                                static_cast<double>(t.tBeat);
    const Tick duration = static_cast<Tick>(
        static_cast<double>(req.busBytes) / bytes_per_ps);
    _stats.busBusy += duration;

    queue.scheduleIn(duration, [this, pkt = req.pkt] {
        ++_stats.completed;
        onComplete(*pkt, queue.now());
        pool.release(pkt);
        busBusy = false;
        scheduleGrant();
        // The stage drained: wake any banks that deferred on it.
        if (cfg.busQueueLimit != 0) {
            for (unsigned b = 0; b < bankState.size(); ++b) {
                if (!bankState[b].busy && !bankQueues[b].empty())
                    startNext(b);
            }
        }
    });
}

// --- Batched stepping ------------------------------------------------
//
// With unbounded queues the micro model's per-bank FCFS collapses to a
// closed form: access i on bank b starts its array work at
// max(arrive_i + controllerLatency, bankFree_{i-1}), regardless of
// when the intervening events would have run. The batched path books
// that timeline at offer time against the lastBankFree SoA array --
// same backend accept() call with the same `ready` argument the micro
// model would pass, so the refresh catch-up horizon and every returned
// tuple are bit-identical. The three per-request events are replaced
// by one armed timer that fires only at externally visible ticks
// (bus completions) and newly safe bus grants.

bool
QueuedVaultController::offerBatched(const Packet &pkt)
{
    ++_stats.accepted;
    Packet *slot = pool.acquire();
    *slot = pkt;
    slot->tVaultArrive = queue.now();
    const unsigned bank_idx = pkt.bank;

    const Tick earliest =
        slot->tVaultArrive + cfg.base.controllerLatency;
    const Tick prev_free = lastBankFree[bank_idx];
    const Tick ready = earliest > prev_free ? earliest : prev_free;

    BankAccessResult res = fastHmc ? fastHmc->accept(*slot, ready)
                                   : storage->accept(*slot, ready);
    slot->tBankStart = res.start;
    lastBankFree[bank_idx] = res.bankFree;
    Tick data_ready = res.dataReady;
    if (slot->cmd == Command::Atomic)
        data_ready += cfg.base.atomicLatency;

    busHeap.push_back(BusEntry{data_ready, nextOfferSeq++, slot,
                               busBytesFor(*slot)});
    std::push_heap(busHeap.begin(), busHeap.end(), BusEntryAfter{});
    // Only the heap minimum can have moved, and only downward.
    ensureArmed(busHeap.front().dataReady);
    return true;
}

Tick
QueuedVaultController::nextDue(bool &any) const
{
    any = !pendingDone.empty() || !busHeap.empty();
    if (!any)
        return 0;
    if (pendingDone.empty())
        return busHeap.front().dataReady;
    if (busHeap.empty())
        return pendingDone.front().at;
    return pendingDone.front().at < busHeap.front().dataReady
               ? pendingDone.front().at
               : busHeap.front().dataReady;
}

void
QueuedVaultController::ensureArmed(Tick at)
{
    if (timerArmed && armedAt <= at)
        return;
    // Events cannot be canceled: a superseded timer stays in the
    // queue and identifies itself at fire time by now != armedAt
    // (processDue is idempotent, so the rare same-tick duplicate
    // after a re-arm is harmless).
    timerArmed = true;
    armedAt = at;
    queue.schedule(at, [this] {
        if (queue.now() == armedAt)
            processDue();
    });
}

void
QueuedVaultController::processDue()
{
    const Tick now = queue.now();

    // Externally visible first: completions whose bus transfer ends
    // now. The deque is monotone and the timer never fires past a
    // pending deadline, so `at` here is exactly `now`.
    while (!pendingDone.empty() && pendingDone.front().at <= now) {
        Packet *pkt = pendingDone.front().pkt;
        const Tick at = pendingDone.front().at;
        pendingDone.pop_front();
        ++_stats.completed;
        onComplete(*pkt, at);
        pool.release(pkt);
    }

    // Bulk-advance the storage engine between visible events: refresh
    // catch-up for the DRAM array, drain-ring retirement for NVM.
    // Timing-neutral by the stepBatch contract (mem/backend.hh).
    storage->stepBatch(now);

    // Sequence every transfer whose data is ready onto the bus. Safe
    // to finalize: a future offer always yields dataReady > now (its
    // ready is at least arrive + controllerLatency > now), so the
    // heap prefix at <= now can no longer be preempted.
    while (!busHeap.empty() && busHeap.front().dataReady <= now) {
        std::pop_heap(busHeap.begin(), busHeap.end(), BusEntryAfter{});
        const BusEntry entry = busHeap.back();
        busHeap.pop_back();
        const Tick start = busFreeAt > entry.dataReady
                               ? busFreeAt
                               : entry.dataReady;
        // Exactly grantBus()'s rate expression, double math included:
        // the same bytes must round to the same duration.
        const DramTimings &t = storage->timings();
        const double bytes_per_ps =
            static_cast<double>(t.beatBytes) /
            static_cast<double>(t.tBeat);
        const Tick duration = static_cast<Tick>(
            static_cast<double>(entry.busBytes) / bytes_per_ps);
        _stats.busBusy += duration;
        busFreeAt = start + duration;
        pendingDone.push_back({busFreeAt, entry.pkt});
    }

    timerArmed = false;
    bool any = false;
    const Tick due = nextDue(any);
    if (any)
        ensureArmed(due);
}

} // namespace hmcsim
