#include "hmc/vault_controller.hh"

#include <memory>
#include <sstream>

namespace hmcsim
{

namespace
{
double
busBytesPerSecond(const DramTimings &t)
{
    return static_cast<double>(t.beatBytes) * 1e12 /
           static_cast<double>(t.tBeat);
}
} // namespace

VaultController::VaultController(const VaultConfig &cfg)
    : cfg(cfg),
      banks(cfg.numBanks),
      nextRefresh(cfg.numBanks, 0),
      dataBus(busBytesPerSecond(cfg.timings))
{
    // Stagger initial refresh deadlines so banks do not refresh in
    // lockstep (real controllers rotate REF commands).
    const Tick interval = refreshInterval();
    if (interval != 0) {
        for (unsigned i = 0; i < cfg.numBanks; ++i)
            nextRefresh[i] = interval * (i + 1) / cfg.numBanks;
    }
}

Tick
VaultController::refreshInterval() const
{
    if (!cfg.refreshEnabled || cfg.refreshMultiplier <= 0.0)
        return 0;
    return static_cast<Tick>(static_cast<double>(cfg.timings.tRefi) /
                             cfg.refreshMultiplier);
}

void
VaultController::setRefresh(bool enabled, double multiplier)
{
    cfg.refreshEnabled = enabled;
    cfg.refreshMultiplier = multiplier;
}

void
VaultController::refreshDue(unsigned bank_idx, Tick now)
{
    const Tick interval = refreshInterval();
    if (interval == 0)
        return;
    while (nextRefresh[bank_idx] <= now) {
        banks[bank_idx].refresh(cfg.timings, nextRefresh[bank_idx]);
        nextRefresh[bank_idx] += interval;
        ++_stats.refreshes;
    }
}

Tick
VaultController::service(const Packet &pkt, Tick arrival)
{
    Tick bank_start = 0;
    return serviceTimed(pkt, arrival, bank_start);
}

Tick
VaultController::service(Packet &pkt, Tick arrival)
{
    Tick bank_start = 0;
    const Tick done = serviceTimed(pkt, arrival, bank_start);
    pkt.tBankStart = bank_start;
    return done;
}

Tick
VaultController::serviceTimed(const Packet &pkt, Tick arrival,
                              Tick &bank_start)
{
    // Atomics modify in place: they occupy the bank like a write and
    // pay the controller's ALU latency on top.
    const bool is_write = pkt.cmd != Command::Read;
    const Tick start = arrival + cfg.controllerLatency;

    refreshDue(pkt.bank, start);
    Bank &bank = banks.at(pkt.bank);
    BankAccessResult res = bank.access(
        cfg.timings, cfg.policy, start, pkt.row, pkt.payload, is_write);
    bank_start = res.start;
    if (pkt.cmd == Command::Atomic)
        res.dataReady += cfg.atomicLatency;

    // The shared TSV data bus moves the payload in 32 B beats plus a
    // command slot; it is the vault's 10 GB/s internal bottleneck.
    // A request that starts inside a 32 B beat wastes part of the
    // first beat (Sec. II-C: "starting or ending a request on a
    // 16-byte boundary uses the DRAM bus inefficiently").
    const Bytes beat_span =
        (pkt.addr % cfg.timings.beatBytes) + pkt.payload;
    const Bytes bus_bytes =
        (cfg.timings.beats(beat_span) + cfg.commandBeats) *
        cfg.timings.beatBytes;
    const Tick bus_done =
        dataBus.admit(res.dataReady, static_cast<double>(bus_bytes));

    switch (pkt.cmd) {
      case Command::Read:
        ++_stats.reads;
        break;
      case Command::Write:
        ++_stats.writes;
        break;
      case Command::Atomic:
        ++_stats.atomics;
        break;
    }
    if (res.rowHit)
        ++_stats.rowHits;
    _stats.payloadBytes += pkt.payload;

    return bus_done;
}

void
VaultController::refreshAll(Tick at)
{
    for (auto &bank : banks)
        bank.refresh(cfg.timings, at);
}

void
VaultController::registerStats(StatRegistry &registry,
                               const StatPath &path) const
{
    registry.addValue((path / "reads").str(), "read requests serviced",
                      &_stats.reads);
    registry.addValue((path / "writes").str(),
                      "write requests serviced", &_stats.writes);
    registry.addValue((path / "atomics").str(),
                      "atomic requests serviced", &_stats.atomics);
    registry.addValue((path / "row_hits").str(),
                      "open-page row-buffer hits", &_stats.rowHits);
    registry.addValue((path / "refreshes").str(),
                      "refresh cycles performed", &_stats.refreshes);
    registry.addValue((path / "payload_bytes").str(),
                      "payload bytes moved", &_stats.payloadBytes);
    registry.add((path / "bus_busy_us").str(),
                 "TSV data-bus busy time",
                 [this] { return ticksToUs(dataBus.busyTime()); });
}

void
VaultController::registerCheckers(CheckerRegistry &registry,
                                  const std::string &name) const
{
    registry.add(std::make_unique<BankStateChecker>(
        name + ".banks", cfg.policy,
        [this]() -> const std::vector<Bank> & { return banks; }));
    registry.addLambda(name + ".stats", [this](Tick) -> std::string {
        const std::uint64_t accesses =
            _stats.reads + _stats.writes + _stats.atomics;
        if (_stats.rowHits > accesses) {
            std::ostringstream out;
            out << _stats.rowHits << " row hits for only " << accesses
                << " serviced requests";
            return out.str();
        }
        return {};
    });
}

double
VaultController::busUtilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(dataBus.busyTime()) /
           static_cast<double>(elapsed);
}

void
VaultController::reset()
{
    for (auto &bank : banks)
        bank.reset();
    dataBus.reset();
    _stats = VaultStats{};
    const Tick interval = refreshInterval();
    for (unsigned i = 0; i < cfg.numBanks; ++i)
        nextRefresh[i] =
            interval ? interval * (i + 1) / cfg.numBanks : 0;
}

} // namespace hmcsim
