#include "hmc/vault_controller.hh"

#include <memory>
#include <sstream>

namespace hmcsim
{

namespace
{
BackendEnvironment
environmentFor(const VaultConfig &cfg)
{
    BackendEnvironment env;
    env.numBanks = cfg.numBanks;
    env.timings = cfg.timings;
    env.policy = cfg.policy;
    env.refreshEnabled = cfg.refreshEnabled;
    env.refreshMultiplier = cfg.refreshMultiplier;
    return env;
}
} // namespace

VaultController::VaultController(const VaultConfig &cfg)
    : cfg(cfg),
      storage(makeMemoryBackend(environmentFor(cfg), cfg.backend)),
      busTimings(&storage->timings()),
      dataBus(storage->busBytesPerSecond())
{
    // The factory's kind() is authoritative: the cast is safe exactly
    // when the engine is the (final) HmcDramBackend.
    if (storage->kind() == BackendKind::HmcDram)
        fastHmc = static_cast<HmcDramBackend *>(storage.get());
}

Tick
VaultController::refreshInterval() const
{
    return storage->refreshInterval();
}

void
VaultController::setRefresh(bool enabled, double multiplier)
{
    cfg.refreshEnabled = enabled;
    cfg.refreshMultiplier = multiplier;
    storage->setRefresh(enabled, multiplier);
}

Tick
VaultController::service(const Packet &pkt, Tick arrival)
{
    Tick bank_start = 0;
    return serviceTimed(pkt, arrival, bank_start);
}

Tick
VaultController::service(Packet &pkt, Tick arrival)
{
    Tick bank_start = 0;
    const Tick done = serviceTimed(pkt, arrival, bank_start);
    pkt.tBankStart = bank_start;
    return done;
}

Tick
VaultController::serviceTimed(const Packet &pkt, Tick arrival,
                              Tick &bank_start)
{
    const Tick start = arrival + cfg.controllerLatency;

    // The storage engine (closed-page HMC DRAM by default; see
    // cfg.backend) books array time and reports the access tuple.
    // The default engine is called through its devirtualized pointer
    // so accept() inlines here; the branch predicts perfectly (one
    // engine per vault for its whole lifetime).
    BankAccessResult res = fastHmc ? fastHmc->accept(pkt, start)
                                   : storage->accept(pkt, start);
    bank_start = res.start;
    // Atomics modify in place: they occupy the bank like a write and
    // pay the controller's ALU latency on top.
    if (pkt.cmd == Command::Atomic)
        res.dataReady += cfg.atomicLatency;

    // The shared TSV data bus moves the payload in 32 B beats plus a
    // command slot; it is the vault's 10 GB/s internal bottleneck.
    // A request that starts inside a 32 B beat wastes part of the
    // first beat (Sec. II-C: "starting or ending a request on a
    // 16-byte boundary uses the DRAM bus inefficiently").
    const DramTimings &t = *busTimings;
    const Bytes beat_span = (pkt.addr % t.beatBytes) + pkt.payload;
    const Bytes bus_bytes =
        (t.beats(beat_span) + cfg.commandBeats) * t.beatBytes;
    const Tick bus_done =
        dataBus.admit(res.dataReady, static_cast<double>(bus_bytes));

    switch (pkt.cmd) {
      case Command::Read:
        ++_stats.reads;
        break;
      case Command::Write:
        ++_stats.writes;
        break;
      case Command::Atomic:
        ++_stats.atomics;
        break;
    }
    if (res.rowHit)
        ++_stats.rowHits;
    _stats.payloadBytes += pkt.payload;

    return bus_done;
}

void
VaultController::refreshAll(Tick at)
{
    storage->refreshAll(at);
}

void
VaultController::registerStats(StatRegistry &registry,
                               const StatPath &path) const
{
    registry.addValue((path / "reads").str(), "read requests serviced",
                      &_stats.reads);
    registry.addValue((path / "writes").str(),
                      "write requests serviced", &_stats.writes);
    registry.addValue((path / "atomics").str(),
                      "atomic requests serviced", &_stats.atomics);
    registry.addValue((path / "row_hits").str(),
                      "open-page row-buffer hits", &_stats.rowHits);
    registry.add((path / "refreshes").str(),
                 "refresh cycles performed", [this] {
        return static_cast<double>(storage->refreshes());
    });
    registry.addValue((path / "payload_bytes").str(),
                      "payload bytes moved", &_stats.payloadBytes);
    registry.add((path / "bus_busy_us").str(),
                 "TSV data-bus busy time",
                 [this] { return ticksToUs(dataBus.busyTime()); });
    storage->registerStats(registry, path);
}

void
VaultController::registerCheckers(CheckerRegistry &registry,
                                  const std::string &name) const
{
    storage->registerCheckers(registry, name);
    registry.addLambda(name + ".stats", [this](Tick) -> std::string {
        const std::uint64_t accesses =
            _stats.reads + _stats.writes + _stats.atomics;
        if (_stats.rowHits > accesses) {
            std::ostringstream out;
            out << _stats.rowHits << " row hits for only " << accesses
                << " serviced requests";
            return out.str();
        }
        return {};
    });
}

double
VaultController::busUtilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(dataBus.busyTime()) /
           static_cast<double>(elapsed);
}

void
VaultController::reset()
{
    storage->reset();
    dataBus.reset();
    _stats = VaultStats{};
}

} // namespace hmcsim
