/**
 * @file
 * Multi-cube chaining.
 *
 * HMC's packet-switched interface lets cubes forward packets for one
 * another, scaling capacity beyond a single package and -- as the
 * paper puts it (Sec. IV-E2) -- buying "better package-level fault
 * tolerance via rerouting around failed packages". This module models
 * a ring of cubes: the host attaches to both ends (cube 0 and cube
 * N-1), every neighboring pair is connected by a full-duplex link,
 * and a request for cube k takes the shorter healthy path. When a
 * cube fails (thermal shutdown, Sec. IV-C), traffic for the others
 * reroutes the opposite way around the ring; only the failed cube's
 * own capacity is lost.
 *
 * Addressing follows the HMC header's CUB field: the top address bits
 * above a cube's capacity select the target cube.
 */

#ifndef HMCSIM_HMC_CHAIN_HH
#define HMCSIM_HMC_CHAIN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "hmc/device.hh"
#include "link/link.hh"
#include "protocol/packet.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Chain configuration. */
struct CubeChainConfig
{
    /** Cubes in the ring (HMC supports up to 8). */
    unsigned numCubes = 2;
    /** Per-cube device configuration. */
    HmcDeviceConfig cube;
    /** Inter-cube link: one half-width 15 Gbps bundle per direction
     *  between neighbors, derated like the host links. */
    double cubeLinkBytesPerSecond = 10.5e9;
    /** Store-and-forward time through an intermediate cube's logic
     *  layer (deserialize, route, reserialize). */
    Tick passThroughLatency = nsToTicks(55.0);
};

/** Outcome of routing one request. */
struct ChainRouteInfo
{
    bool reachable = true;
    /** Hops from the chosen host port to the target cube. */
    unsigned hops = 0;
    /** True when the shorter-side path was blocked by a failure. */
    bool rerouted = false;
};

/** A ring of HMC cubes behind two host attach points. */
class CubeChain
{
  public:
    explicit CubeChain(const CubeChainConfig &cfg);

    /** Total addressable capacity across all cubes. */
    Bytes capacity() const;

    /** Cube index an address targets (the CUB field). */
    unsigned targetCube(Addr addr) const;

    /**
     * Route and service one request arriving at the host interface.
     * Fills @p route with the path taken. Unreachable targets (all
     * paths blocked by failures) return immediately with
     * route.reachable = false and flag the packet.
     *
     * @return Response-ready time back at the host interface.
     */
    Tick handleRequest(Packet &pkt, Tick arrival,
                       ChainRouteInfo *route = nullptr);

    /** Mark a cube failed (e.g. thermal shutdown) or recovered. */
    void setCubeFailed(unsigned cube, bool failed);
    bool cubeFailed(unsigned cube) const { return failed.at(cube); }

    /** True when some healthy path reaches @p cube. */
    bool reachable(unsigned cube) const;

    HmcDevice &cube(unsigned idx) { return *cubes.at(idx); }
    unsigned numCubes() const
    {
        return static_cast<unsigned>(cubes.size());
    }
    const CubeChainConfig &config() const { return cfg; }

    /** Requests that could not be delivered (no healthy path). */
    std::uint64_t unreachableRequests() const { return numUnreachable; }
    /** Requests that took the long way around a failure. */
    std::uint64_t reroutedRequests() const { return numRerouted; }

    /** Register chain + per-cube counters under @p path. */
    void registerStats(StatRegistry &registry, const StatPath &path) const;

  private:
    /**
     * Hops from host side 0 (entering at cube 0) to @p target going
     * "up" the chain, checking intermediate cubes for failures.
     * Returns false when blocked.
     */
    bool pathClear(bool from_front, unsigned target,
                   unsigned &hops) const;

    /** Serialize over the @p hops inter-cube links of one side. */
    Tick traverse(bool from_front, unsigned target, Tick start,
                  Bytes bytes, bool toward_cube);

    CubeChainConfig cfg;
    std::vector<std::unique_ptr<HmcDevice>> cubes;
    std::vector<bool> failed;
    /** Per-neighbor-pair links: [i] connects cube i and cube i+1,
     *  one LinkDirection per direction. */
    std::vector<std::unique_ptr<LinkDirection>> linksUp;
    std::vector<std::unique_ptr<LinkDirection>> linksDown;
    std::uint64_t numUnreachable = 0;
    std::uint64_t numRerouted = 0;
};

} // namespace hmcsim

#endif // HMCSIM_HMC_CHAIN_HH
