/**
 * @file
 * Top-level HMC device model: address decode, quadrant routing, and
 * the 16 vault controllers.
 *
 * Each external link enters the cube at one quadrant; packets for a
 * vault in another quadrant pay an extra crossbar hop (Sec. II-B:
 * "an access to a local vault in a quadrant incurs lower latency than
 * an access to a vault in another quadrant").
 */

#ifndef HMCSIM_HMC_DEVICE_HH
#define HMCSIM_HMC_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "hmc/address_mapper.hh"
#include "hmc/config.hh"
#include "hmc/vault_controller.hh"
#include "sim/stat_registry.hh"
#include "protocol/packet.hh"
#include "sim/types.hh"

namespace hmcsim
{

/** Configuration of the modeled cube. */
struct HmcDeviceConfig
{
    HmcConfig structure = HmcConfig::gen2_4GB();
    VaultConfig vault;
    MaxBlockSize maxBlock = MaxBlockSize::B128;
    MappingScheme mapping = MappingScheme::VaultFirst;
    /** Link ingress to local-quadrant vault latency. */
    Tick quadrantLocalLatency = nsToTicks(12.0);
    /** Additional latency per hop to a remote quadrant. */
    Tick quadrantHopLatency = nsToTicks(8.0);
    /** Response routing back to the link plus SerDes TX on-cube. */
    Tick responsePathLatency = nsToTicks(45.0);
};

/** Device-level aggregate statistics. */
struct HmcDeviceStats
{
    std::uint64_t requests = 0;
    std::uint64_t localQuadrantHits = 0;
    Bytes readPayloadBytes = 0;
    Bytes writePayloadBytes = 0;
};

/** The cube. */
class HmcDevice
{
  public:
    explicit HmcDevice(const HmcDeviceConfig &cfg);

    /**
     * Accept a request arriving from a link and compute when its
     * response is ready to serialize back onto that link. Fills the
     * packet's decoded-address and timing fields.
     *
     * @param pkt Request; pkt.link selects the ingress quadrant.
     * @param arrival Time the last request flit arrived at the cube.
     * @return Response-ready time at the link TX.
     */
    Tick handleRequest(Packet &pkt, Tick arrival);

    /**
     * When the cube is in thermal shutdown, responses flag failure in
     * their header/tail (Sec. IV-C) and data is lost.
     */
    void setThermalShutdown(bool value) { thermalShutdown = value; }
    bool inThermalShutdown() const { return thermalShutdown; }

    /**
     * Adjust the refresh engine for an operating temperature: DRAM
     * doubles its refresh rate above 85 C (Sec. I: "higher
     * temperatures trigger mechanisms such as frequent refresh").
     */
    void applyTemperature(double temperature_c);

    /** Threshold above which the refresh rate doubles. */
    static constexpr double hotRefreshThresholdC = 85.0;

    const AddressMapper &mapper() const { return _mapper; }
    const HmcDeviceConfig &config() const { return cfg; }
    const HmcDeviceStats &stats() const { return _stats; }

    /** Register device + per-vault counters under @p path. */
    void registerStats(StatRegistry &registry, const StatPath &path) const;

    /** Register every vault's model invariants under @p name. */
    void registerCheckers(CheckerRegistry &registry,
                          const std::string &name) const;

    VaultController &vault(unsigned idx) { return *vaults.at(idx); }
    const VaultController &vault(unsigned idx) const
    {
        return *vaults.at(idx);
    }
    unsigned numVaults() const
    {
        return static_cast<unsigned>(vaults.size());
    }

    /** Quadrant a link enters the cube at (link i -> quadrant i). */
    unsigned
    ingressQuadrant(unsigned link) const
    {
        return link % cfg.structure.numQuadrants;
    }

    void reset();

    /**
     * Become a state copy of @p src for simulator fork
     * (sim/snapshot.hh): per-vault backend/bus state plus device
     * counters. The address mapper is pure configuration and stays as
     * constructed. Must run on a freshly built device with identical
     * configuration; read-only on @p src.
     */
    void
    restoreFrom(const HmcDevice &src)
    {
        for (std::size_t i = 0; i < vaults.size(); ++i)
            vaults[i]->restoreFrom(*src.vaults[i]);
        _stats = src._stats;
        thermalShutdown = src.thermalShutdown;
    }

  private:
    HmcDeviceConfig cfg;
    AddressMapper _mapper;
    std::vector<std::unique_ptr<VaultController>> vaults;
    HmcDeviceStats _stats;
    bool thermalShutdown = false;
};

} // namespace hmcsim

#endif // HMCSIM_HMC_DEVICE_HH
