#include "analysis/regression.hh"

#include "sim/logging.hh"

namespace hmcsim
{

LinearFit
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        fatal("linearFit: mismatched sample sizes");
    LinearFit fit;
    fit.n = xs.size();
    if (fit.n < 2)
        return fit;

    const auto n = static_cast<double>(fit.n);
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < fit.n; ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    if (denom == 0.0)
        return fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double ss_tot = syy - sy * sy / n;
    if (ss_tot > 0.0) {
        double ss_res = 0.0;
        for (std::size_t i = 0; i < fit.n; ++i) {
            const double e = ys[i] - fit.at(xs[i]);
            ss_res += e * e;
        }
        fit.r2 = 1.0 - ss_res / ss_tot;
    }
    return fit;
}

double
littlesLawOccupancy(double latency_us, double rate_mrps)
{
    // (us) * (requests/us) = requests.
    return latency_us * rate_mrps;
}

std::size_t
saturationKnee(const std::vector<LatencyBandwidthPoint> &curve,
               double factor)
{
    if (curve.empty())
        return 0;
    const double base = curve.front().latencyUs;
    for (std::size_t i = 0; i < curve.size(); ++i) {
        if (curve[i].latencyUs > base * factor)
            return i;
    }
    return curve.size() - 1;
}

} // namespace hmcsim
