#include "analysis/table.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace hmcsim
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers.size())
        fatal("TextTable row arity %zu != header arity %zu",
              cells.size(), headers.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit_row(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (char c : cell) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    };
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << quote(row[c]);
            if (c + 1 < row.size())
                out << ',';
        }
        out << '\n';
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);

    const char *dir = std::getenv("HMCSIM_CSV_DIR");
    if (!dir || !*dir)
        return;
    // Atomic: benches print from one thread today, but the CSV
    // export must not silently corrupt the sequence if a sink ever
    // prints tables from sweep workers.
    static std::atomic<int> sequence{0};
    std::string program = "table";
#ifdef __GLIBC__
    if (program_invocation_short_name)
        program = program_invocation_short_name;
#endif
    const std::string path = std::string(dir) + "/" + program + "_" +
                             std::to_string(++sequence) + ".csv";
    if (std::FILE *f = std::fopen(path.c_str(), "w")) {
        std::fputs(renderCsv().c_str(), f);
        std::fclose(f);
    } else {
        warn("cannot write CSV export %s", path.c_str());
    }
}

std::string
strfmt(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

} // namespace hmcsim
