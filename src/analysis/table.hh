/**
 * @file
 * Minimal fixed-width ASCII table formatter used by the benches and
 * examples to print paper-style rows and series.
 */

#ifndef HMCSIM_ANALYSIS_TABLE_HH
#define HMCSIM_ANALYSIS_TABLE_HH

#include <string>
#include <vector>

namespace hmcsim
{

/** Column-aligned text table. */
class TextTable
{
  public:
    /** Define the header row. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row (must match the header arity). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    /** Render as CSV (header row + data rows, comma-separated with
     *  minimal quoting). */
    std::string renderCsv() const;

    /**
     * Render and write to stdout. When the HMCSIM_CSV_DIR environment
     * variable is set, also export the table as
     * `<dir>/<program>_<n>.csv` (n counts tables printed by this
     * process), so every bench's series can be re-plotted without
     * touching the bench.
     */
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** printf-style helper returning std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace hmcsim

#endif // HMCSIM_ANALYSIS_TABLE_HH
