/**
 * @file
 * Analysis helpers shared by benches: least-squares regression
 * (Figs. 11, 12), Little's-law occupancy (Fig. 17), and saturation-
 * knee detection for latency/bandwidth curves (Figs. 17, 18).
 */

#ifndef HMCSIM_ANALYSIS_REGRESSION_HH
#define HMCSIM_ANALYSIS_REGRESSION_HH

#include <cstddef>
#include <vector>

namespace hmcsim
{

/** y = slope * x + intercept, with goodness of fit. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;
    std::size_t n = 0;

    double
    at(double x) const
    {
        return slope * x + intercept;
    }
};

/** Ordinary least squares over paired samples. */
LinearFit linearFit(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/**
 * Little's law: average occupancy of a black-box server given the
 * time spent inside (us) and the throughput (million requests/s).
 * The paper applies this to the vault controller at the latency
 * saturation point (Sec. IV-E4).
 */
double littlesLawOccupancy(double latency_us, double rate_mrps);

/** One point of a latency-vs-bandwidth curve. */
struct LatencyBandwidthPoint
{
    double bandwidthGBps;
    double latencyUs;
};

/**
 * Find the saturation knee of a latency/bandwidth curve: the first
 * point whose latency exceeds @p factor times the lowest-load
 * latency. Returns the index of that point, or the last index when
 * the curve never saturates.
 */
std::size_t saturationKnee(const std::vector<LatencyBandwidthPoint> &curve,
                           double factor = 2.0);

} // namespace hmcsim

#endif // HMCSIM_ANALYSIS_REGRESSION_HH
