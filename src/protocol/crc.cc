#include "protocol/crc.hh"

#include <array>

namespace hmcsim
{

namespace
{

/** Reflect the 32-bit polynomial for LSB-first table generation. */
constexpr std::uint32_t
reflect32(std::uint32_t v)
{
    std::uint32_t r = 0;
    for (int i = 0; i < 32; ++i) {
        r = (r << 1) | (v & 1u);
        v >>= 1;
    }
    return r;
}

constexpr std::uint32_t reflectedPoly = reflect32(hmcCrcPolynomial);

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? reflectedPoly : 0u);
        table[i] = crc;
    }
    return table;
}

constexpr auto crcTable = makeTable();

} // namespace

Crc32::Crc32() : state(~0u)
{
}

void
Crc32::update(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i)
        state = (state >> 8) ^ crcTable[(state ^ bytes[i]) & 0xFFu];
}

void
Crc32::reset()
{
    state = ~0u;
}

std::uint32_t
Crc32::compute(const void *data, std::size_t len)
{
    Crc32 crc;
    crc.update(data, len);
    return crc.value();
}

} // namespace hmcsim
