#include "protocol/crc.hh"

#include <array>
#include <cstring>

namespace hmcsim
{

namespace
{

/** Reflect the 32-bit polynomial for LSB-first table generation. */
constexpr std::uint32_t
reflect32(std::uint32_t v)
{
    std::uint32_t r = 0;
    for (int i = 0; i < 32; ++i) {
        r = (r << 1) | (v & 1u);
        v >>= 1;
    }
    return r;
}

constexpr std::uint32_t reflectedPoly = reflect32(hmcCrcPolynomial);

/**
 * Slicing-by-8 tables. Table 0 is the classic byte-at-a-time table;
 * table k advances a byte's contribution k further positions through
 * the register, so eight bytes fold in one step with eight
 * independent lookups instead of eight serial ones. The computed CRC
 * is bit-identical to the byte-wise form (the controller stamps and
 * the cube verifies the same values as before the optimization).
 */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? reflectedPoly : 0u);
        tables[0][i] = crc;
    }
    for (std::size_t k = 1; k < 8; ++k) {
        for (std::uint32_t i = 0; i < 256; ++i) {
            const std::uint32_t prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xFFu];
        }
    }
    return tables;
}

constexpr auto crcTables = makeTables();

} // namespace

Crc32::Crc32() : state(~0u)
{
}

void
Crc32::update(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // Hot path: the packet-CRC stages feed 8-byte words (header bits,
    // pseudo-payload words), so the whole update is one folded step.
    while (len >= 8) {
        std::uint64_t word;
        std::memcpy(&word, bytes, 8);
        word ^= state;
        state = crcTables[7][word & 0xFFu] ^
                crcTables[6][(word >> 8) & 0xFFu] ^
                crcTables[5][(word >> 16) & 0xFFu] ^
                crcTables[4][(word >> 24) & 0xFFu] ^
                crcTables[3][(word >> 32) & 0xFFu] ^
                crcTables[2][(word >> 40) & 0xFFu] ^
                crcTables[1][(word >> 48) & 0xFFu] ^
                crcTables[0][(word >> 56) & 0xFFu];
        bytes += 8;
        len -= 8;
    }
#endif
    for (std::size_t i = 0; i < len; ++i)
        state = (state >> 8) ^ crcTables[0][(state ^ bytes[i]) & 0xFFu];
}

void
Crc32::reset()
{
    state = ~0u;
}

std::uint32_t
Crc32::compute(const void *data, std::size_t len)
{
    Crc32 crc;
    crc.update(data, len);
    return crc.value();
}

} // namespace hmcsim
