#include "protocol/fields.hh"

#include "protocol/crc.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace hmcsim
{

namespace
{

constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

} // namespace

std::uint64_t
encodeRequestHeader(const RequestHeader &header)
{
    std::uint64_t bits = 0;
    bits |= (static_cast<std::uint64_t>(header.cmd) & mask(7)) << 0;
    bits |= (static_cast<std::uint64_t>(header.lng) & mask(5)) << 7;
    bits |= (static_cast<std::uint64_t>(header.tag) & mask(11)) << 12;
    bits |= (static_cast<std::uint64_t>(header.adrs) & mask(34)) << 23;
    bits |= (static_cast<std::uint64_t>(header.cub) & mask(3)) << 57;
    return bits;
}

RequestHeader
decodeRequestHeader(std::uint64_t bits)
{
    RequestHeader header;
    header.cmd = static_cast<std::uint8_t>((bits >> 0) & mask(7));
    header.lng = static_cast<std::uint8_t>((bits >> 7) & mask(5));
    header.tag = static_cast<std::uint16_t>((bits >> 12) & mask(11));
    header.adrs = (bits >> 23) & mask(34);
    header.cub = static_cast<std::uint8_t>((bits >> 57) & mask(3));
    return header;
}

std::uint64_t
encodePacketTail(const PacketTail &tail)
{
    std::uint64_t bits = 0;
    bits |= (static_cast<std::uint64_t>(tail.crc) & mask(32)) << 0;
    bits |= (static_cast<std::uint64_t>(tail.rtc) & mask(5)) << 32;
    bits |= (static_cast<std::uint64_t>(tail.slid) & mask(3)) << 37;
    bits |= (static_cast<std::uint64_t>(tail.seq) & mask(3)) << 40;
    bits |= (static_cast<std::uint64_t>(tail.frp) & mask(8)) << 43;
    bits |= (static_cast<std::uint64_t>(tail.rrp) & mask(8)) << 51;
    return bits;
}

PacketTail
decodePacketTail(std::uint64_t bits)
{
    PacketTail tail;
    tail.crc = static_cast<std::uint32_t>((bits >> 0) & mask(32));
    tail.rtc = static_cast<std::uint8_t>((bits >> 32) & mask(5));
    tail.slid = static_cast<std::uint8_t>((bits >> 37) & mask(3));
    tail.seq = static_cast<std::uint8_t>((bits >> 40) & mask(3));
    tail.frp = static_cast<std::uint8_t>((bits >> 43) & mask(8));
    tail.rrp = static_cast<std::uint8_t>((bits >> 51) & mask(8));
    return tail;
}

CommandCode
commandCode(Command cmd, Bytes payload)
{
    const unsigned flits = dataFlits(payload);
    switch (cmd) {
      case Command::Read:
        return static_cast<CommandCode>(
            static_cast<std::uint8_t>(CommandCode::RD16) + flits - 1);
      case Command::Write:
        return static_cast<CommandCode>(
            static_cast<std::uint8_t>(CommandCode::WR16) + flits - 1);
      case Command::Atomic:
        return CommandCode::Atomic2Add8;
    }
    return CommandCode::Error;
}

Command
commandClass(std::uint8_t code)
{
    const auto rd16 = static_cast<std::uint8_t>(CommandCode::RD16);
    const auto wr16 = static_cast<std::uint8_t>(CommandCode::WR16);
    if (code >= rd16 && code < rd16 + 8)
        return Command::Read;
    if (code >= wr16 && code < wr16 + 8)
        return Command::Write;
    if (code == static_cast<std::uint8_t>(CommandCode::Atomic2Add8))
        return Command::Atomic;
    fatal("unknown command code 0x%02x", code);
}

Bytes
payloadForCode(std::uint8_t code)
{
    const auto rd16 = static_cast<std::uint8_t>(CommandCode::RD16);
    const auto wr16 = static_cast<std::uint8_t>(CommandCode::WR16);
    if (code >= rd16 && code < rd16 + 8)
        return static_cast<Bytes>(code - rd16 + 1) * 16;
    if (code >= wr16 && code < wr16 + 8)
        return static_cast<Bytes>(code - wr16 + 1) * 16;
    if (code == static_cast<std::uint8_t>(CommandCode::Atomic2Add8))
        return 16;
    fatal("unknown command code 0x%02x", code);
}

RequestHeader
makeRequestHeader(const Packet &pkt, std::uint8_t cub)
{
    RequestHeader header;
    header.cub = cub;
    header.adrs = pkt.addr & mask(34);
    header.tag = static_cast<std::uint16_t>(pkt.tag & mask(11));
    header.lng = static_cast<std::uint8_t>(pkt.reqFlits());
    header.cmd = static_cast<std::uint8_t>(
        commandCode(pkt.cmd, pkt.payload));
    return header;
}

std::uint32_t
packetCrc(const Packet &pkt, std::uint64_t header_bits)
{
    Crc32 crc;
    crc.update(&header_bits, sizeof(header_bits));
    // Deterministic pseudo-payload from the packet identity: distinct
    // packets get distinct protected bytes.
    std::uint64_t state = pkt.id ^ (pkt.addr << 1);
    const unsigned payload_words =
        static_cast<unsigned>(pkt.payload / 8);
    for (unsigned i = 0; i < payload_words; ++i) {
        const std::uint64_t word = splitMix64(state);
        crc.update(&word, sizeof(word));
    }
    return crc.value();
}

} // namespace hmcsim
