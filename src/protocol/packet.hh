/**
 * @file
 * HMC packet-protocol definitions (HMC 1.1 specification, Sec. II-B).
 *
 * The HMC link protocol moves packets built from 16-byte flits. Every
 * packet carries one flit of overhead (8 B header + 8 B tail); data
 * payloads span 0 to 8 flits. Table II of the paper:
 *
 *   Type        Read-req  Read-resp  Write-req  Write-resp
 *   Data        empty     1..8 flits 1..8 flits empty
 *   Overhead    1 flit    1 flit     1 flit     1 flit
 *   Total       1 flit    2..9 flits 2..9 flits 1 flit
 */

#ifndef HMCSIM_PROTOCOL_PACKET_HH
#define HMCSIM_PROTOCOL_PACKET_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace hmcsim
{

/** Size of one flit in bytes. */
constexpr Bytes flitBytes = 16;

/** Packet overhead: 8 B header + 8 B tail = one flit. */
constexpr Bytes packetOverheadBytes = 16;

/** Maximum data payload per packet (8 flits). */
constexpr Bytes maxPayloadBytes = 128;

/** Request commands modeled by the simulator. */
enum class Command : std::uint8_t
{
    Read,      ///< RD16..RD128: payload returns in the response.
    Write,     ///< WR16..WR128: payload travels in the request.
    Atomic,    ///< Dual 8-byte add-immediate style atomics (HMC spec).
};

/** Human-readable command name. */
const char *commandName(Command cmd);

/** The three GUPS request mixes studied by the paper (Sec. III-B),
 *  plus in-memory atomics (the PIM-style alternative to rw). */
enum class RequestMix : std::uint8_t
{
    ReadOnly,        ///< ro
    WriteOnly,       ///< wo
    ReadModifyWrite, ///< rw: a read followed by a dependent write.
    Atomic,          ///< HMC atomic update commands (extension).
};

const char *requestMixName(RequestMix mix);

/** Number of data flits needed for @p payload bytes (rounded up). */
constexpr unsigned
dataFlits(Bytes payload)
{
    return static_cast<unsigned>((payload + flitBytes - 1) / flitBytes);
}

/** Request packet size in flits (Table II). */
constexpr unsigned
requestFlits(Command cmd, Bytes payload)
{
    switch (cmd) {
      case Command::Read:
        return 1;
      case Command::Write:
        return 1 + dataFlits(payload);
      case Command::Atomic:
        return 2; // 16 B immediate operand.
    }
    return 0;
}

/** Response packet size in flits (Table II). */
constexpr unsigned
responseFlits(Command cmd, Bytes payload)
{
    switch (cmd) {
      case Command::Read:
        return 1 + dataFlits(payload);
      case Command::Write:
        return 1;
      case Command::Atomic:
        return 1;
    }
    return 0;
}

/** Request packet size in bytes, including header and tail. */
constexpr Bytes
requestBytes(Command cmd, Bytes payload)
{
    return static_cast<Bytes>(requestFlits(cmd, payload)) * flitBytes;
}

/** Response packet size in bytes, including header and tail. */
constexpr Bytes
responseBytes(Command cmd, Bytes payload)
{
    return static_cast<Bytes>(responseFlits(cmd, payload)) * flitBytes;
}

/**
 * Raw link bytes a complete transaction moves in both directions.
 * This is the accounting the paper uses for "raw bandwidth".
 */
constexpr Bytes
transactionBytes(Command cmd, Bytes payload)
{
    return requestBytes(cmd, payload) + responseBytes(cmd, payload);
}

/**
 * Fraction of raw link bytes that is user data (Sec. IV-D):
 * 128 B requests reach 128/(128+16) = 89 %; 16 B requests only 50 %.
 */
constexpr double
effectiveBandwidthFraction(Bytes payload)
{
    return static_cast<double>(payload) /
           static_cast<double>(payload + packetOverheadBytes);
}

/**
 * An in-flight transaction. The same object describes the request on
 * the TX path and the response on the RX path; the simulator moves it
 * by value through event closures.
 */
struct Packet
{
    /** Monotonic id, unique within one simulated system. */
    std::uint64_t id = 0;
    Command cmd = Command::Read;
    /** Cube address (34-bit field in the request header). */
    Addr addr = 0;
    /** Data payload in bytes (16..128, multiple of 16). */
    Bytes payload = 0;
    /** Issuing GUPS port. */
    std::uint8_t port = 0;
    /** Tag from the port's read tag pool (reads/atomics only). */
    std::uint16_t tag = 0;
    /** External link the packet uses (0 or 1 on the AC-510). */
    std::uint8_t link = 0;

    // Decoded by the address mapper when entering the cube.
    std::uint8_t quadrant = 0;
    std::uint8_t vault = 0;
    std::uint8_t bank = 0;
    std::uint32_t row = 0;

    /** Set in the response header when the cube signals thermal
     *  shutdown (Sec. IV-C: head/tail carries failure indication). */
    bool thermalFailure = false;

    /** Encoded request header (see protocol/fields.hh); stamped by
     *  the controller TX path, verified at the cube. 0 = unstamped. */
    std::uint64_t headerBits = 0;
    /** Tail CRC protecting header + payload. */
    std::uint32_t tailCrc = 0;

    // Timestamps for latency deconstruction (Fig. 14 / Sec. IV-E).
    Tick tIssued = 0;      ///< Submitted to the HMC controller.
    Tick tLinkTx = 0;      ///< Started serializing onto the link.
    Tick tVaultArrive = 0; ///< Entered the vault controller queue.
    Tick tBankStart = 0;   ///< DRAM bank began the access (0 when the
                           ///< cube refused the request, e.g. thermal
                           ///< shutdown).
    Tick tDramDone = 0;    ///< DRAM access finished.
    Tick tResponse = 0;    ///< Response received by the port.

    unsigned reqFlits() const { return requestFlits(cmd, payload); }
    unsigned respFlits() const { return responseFlits(cmd, payload); }
    Bytes reqBytes() const { return requestBytes(cmd, payload); }
    Bytes respBytes() const { return responseBytes(cmd, payload); }
};

} // namespace hmcsim

#endif // HMCSIM_PROTOCOL_PACKET_HH
