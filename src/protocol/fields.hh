/**
 * @file
 * Bit-level packet header/tail encoding.
 *
 * HMC packets carry an 8-byte header and an 8-byte tail (Sec. II-B).
 * This module packs and unpacks the fields the protocol needs --
 * command, length, tag, 34-bit address, cube id in the header;
 * sequence numbers, retry pointers, and the CRC in the tail. Field
 * widths follow the HMC specification; bit positions are documented
 * here and round-trip tested rather than asserted against silicon.
 *
 * The timing model works on byte counts, so these encoders sit on the
 * correctness path: they give the CRC real bytes to protect and the
 * retry/flow-control machinery real fields to operate on.
 */

#ifndef HMCSIM_PROTOCOL_FIELDS_HH
#define HMCSIM_PROTOCOL_FIELDS_HH

#include <cstdint>

#include "protocol/packet.hh"

namespace hmcsim
{

/** Command encodings (a representative subset of the spec's table). */
enum class CommandCode : std::uint8_t
{
    RD16 = 0x30, ///< ..RD128 = 0x37 (RD16 + flits-1)
    WR16 = 0x08, ///< ..WR128 = 0x0F
    Atomic2Add8 = 0x12,
    RdResponse = 0x38,
    WrResponse = 0x39,
    Error = 0x3E,
};

/** Decoded request header fields. */
struct RequestHeader
{
    std::uint8_t cub;   ///< Cube id (3 bits, chained devices).
    Addr adrs;          ///< 34-bit address.
    std::uint16_t tag;  ///< 11-bit request tag.
    std::uint8_t lng;   ///< Packet length in flits (5 bits).
    std::uint8_t cmd;   ///< Command (7 bits).
};

/** Decoded tail fields. */
struct PacketTail
{
    std::uint32_t crc;  ///< CRC-32 over header + payload.
    std::uint8_t rtc;   ///< Return token count (5 bits).
    std::uint8_t slid;  ///< Source link id (3 bits).
    std::uint8_t seq;   ///< 3-bit sequence number.
    std::uint8_t frp;   ///< Forward retry pointer (8 bits).
    std::uint8_t rrp;   ///< Return retry pointer (8 bits).
};

/**
 * Header layout (64 bits):
 *   [6:0]   CMD     [11:7]  LNG     [22:12] TAG
 *   [56:23] ADRS    [59:57] CUB     [63:60] reserved
 */
std::uint64_t encodeRequestHeader(const RequestHeader &header);
RequestHeader decodeRequestHeader(std::uint64_t bits);

/**
 * Tail layout (64 bits):
 *   [31:0]  CRC     [36:32] RTC     [39:37] SLID
 *   [42:40] SEQ     [50:43] FRP     [58:51] RRP   [63:59] reserved
 */
std::uint64_t encodePacketTail(const PacketTail &tail);
PacketTail decodePacketTail(std::uint64_t bits);

/** Command code for a request packet. */
CommandCode commandCode(Command cmd, Bytes payload);

/** Inverse of commandCode: the command class of a code. */
Command commandClass(std::uint8_t code);

/** Payload size a request command code implies. */
Bytes payloadForCode(std::uint8_t code);

/** Build the on-the-wire header for a request packet. */
RequestHeader makeRequestHeader(const Packet &pkt, std::uint8_t cub = 0);

/**
 * Compute the tail CRC of a packet: covers the encoded header and a
 * deterministic pseudo-payload derived from the packet identity (the
 * simulator does not track data bytes; the pseudo-payload gives the
 * CRC real, distinct bytes to protect).
 */
std::uint32_t packetCrc(const Packet &pkt, std::uint64_t header_bits);

} // namespace hmcsim

#endif // HMCSIM_PROTOCOL_FIELDS_HH
