// lint:file(hot-path) -- event-core file: allocation-free callables (no std::function) and HMCSIM_DCHECK-only invariants, enforced by hmcsim-lint.
/**
 * @file
 * Free-list pool for in-flight packets.
 *
 * The event-core overhaul (docs/performance.md) forbids per-event
 * heap traffic on the steady-state path. Packets used to ride through
 * the controller's TX/RX pipeline *by value inside event captures*,
 * which both exceeded the Event inline budget (sim/event.hh) and made
 * every hop copy ~150 bytes. Components now acquire a pooled Packet
 * once per transaction, thread a pointer through their event
 * captures, and release it when the transaction retires.
 *
 * The pool grows in blocks and never shrinks: after the warm-up
 * transient every acquire is a free-list pop, so a steady-state
 * schedule/fire/complete cycle performs zero allocations (enforced by
 * tests/test_event_queue.cc).
 *
 * Threading: one pool per simulated system, same contract as the
 * EventQueue that drives it (see host/ac510.hh) -- never shared
 * across threads.
 */

#ifndef HMCSIM_PROTOCOL_PACKET_POOL_HH
#define HMCSIM_PROTOCOL_PACKET_POOL_HH

#include <algorithm>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "protocol/packet.hh"
#include "sim/check.hh"

namespace hmcsim
{

static_assert(std::is_trivially_copyable_v<Packet>,
              "Packet must stay trivially copyable: pooled slots are "
              "recycled by plain assignment");

/** A per-simulator free-list pool of Packet slots. */
class PacketPool
{
  public:
    /** @param block_packets Slots added per growth step. */
    explicit PacketPool(std::size_t block_packets = 256)
        : blockPackets(block_packets ? block_packets : 1)
    {
    }

    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;

    /**
     * Take a fresh default-initialized packet slot. Amortized
     * allocation-free: a new block is carved only when the free list
     * is empty, which stops happening once the in-flight high-water
     * mark is reached.
     */
    Packet *
    acquire()
    {
        if (freeList.empty())
            grow();
        Packet *slot = freeList.back();
        freeList.pop_back();
        *slot = Packet{};
        ++numAcquired;
        const std::size_t live = numAcquired - numReleased;
        if (live > _highWater)
            _highWater = live;
        return slot;
    }

    /** Return @p slot to the free list. */
    void
    release(Packet *slot)
    {
        ++numReleased;
        freeList.push_back(slot);
    }

    /** Slots currently checked out. */
    std::size_t live() const { return numAcquired - numReleased; }

    /** Most slots ever simultaneously checked out. */
    std::size_t highWater() const { return _highWater; }

    /** Total slots owned (live + free). */
    std::size_t capacity() const { return blocks.size() * blockPackets; }

    /** Growth steps taken (1 after the first acquire; stable once
     *  warm -- the perf harness watches this). */
    std::size_t blocksAllocated() const { return blocks.size(); }

    /**
     * Become a deep copy of @p src for simulator fork (sim/snapshot.hh):
     * replicate every block byte-for-byte, register each source block's
     * extent in @p fixup so captured Packet pointers can be translated,
     * and rebuild the free list through that translation. Must be
     * called on a fresh pool; read-only on @p src.
     */
    template <typename Fixup>
    void
    cloneFrom(const PacketPool &src, Fixup &fixup)
    {
        HMCSIM_DCHECK(blocks.empty() && numAcquired == 0,
                      "pool clone target must be fresh");
        blockPackets = src.blockPackets;
        blocks.reserve(src.blocks.size());
        for (const auto &src_block : src.blocks) {
            blocks.push_back(std::make_unique<Packet[]>(blockPackets));
            Packet *base = blocks.back().get();
            std::copy(src_block.get(), src_block.get() + blockPackets,
                      base);
            fixup.mapRange(src_block.get(),
                           src_block.get() + blockPackets, base);
        }
        freeList.reserve(src.freeList.size());
        for (Packet *slot : src.freeList)
            freeList.push_back(fixup.translate(slot));
        numAcquired = src.numAcquired;
        numReleased = src.numReleased;
        _highWater = src._highWater;
    }

  private:
    void
    grow()
    {
        blocks.push_back(std::make_unique<Packet[]>(blockPackets));
        Packet *base = blocks.back().get();
        freeList.reserve(freeList.size() + blockPackets);
        for (std::size_t i = blockPackets; i > 0; --i)
            freeList.push_back(base + (i - 1));
    }

    std::size_t blockPackets;
    std::vector<std::unique_ptr<Packet[]>> blocks;
    std::vector<Packet *> freeList;
    std::size_t numAcquired = 0;
    std::size_t numReleased = 0;
    std::size_t _highWater = 0;
};

} // namespace hmcsim

#endif // HMCSIM_PROTOCOL_PACKET_POOL_HH
