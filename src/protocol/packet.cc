#include "protocol/packet.hh"

namespace hmcsim
{

const char *
commandName(Command cmd)
{
    switch (cmd) {
      case Command::Read:
        return "READ";
      case Command::Write:
        return "WRITE";
      case Command::Atomic:
        return "ATOMIC";
    }
    return "?";
}

const char *
requestMixName(RequestMix mix)
{
    switch (mix) {
      case RequestMix::ReadOnly:
        return "ro";
      case RequestMix::WriteOnly:
        return "wo";
      case RequestMix::ReadModifyWrite:
        return "rw";
      case RequestMix::Atomic:
        return "atomic";
    }
    return "?";
}

} // namespace hmcsim
