/**
 * @file
 * CRC-32 used by the HMC packet tail for link-level data integrity.
 *
 * The HMC specification protects every packet with a 32-bit CRC using
 * the Koopman polynomial 0x741B8CD7. The Add-CRC / verify stages of the
 * controller pipeline (Fig. 14, stages 6 and the RX mirror) compute
 * this over header + payload.
 */

#ifndef HMCSIM_PROTOCOL_CRC_HH
#define HMCSIM_PROTOCOL_CRC_HH

#include <cstddef>
#include <cstdint>

namespace hmcsim
{

/** Koopman CRC-32 polynomial specified for HMC packets. */
constexpr std::uint32_t hmcCrcPolynomial = 0x741B8CD7u;

/**
 * Incremental CRC-32 (reflected form) over a byte stream.
 */
class Crc32
{
  public:
    Crc32();

    /** Feed @p len bytes. */
    void update(const void *data, std::size_t len);

    /** Finalized CRC of everything fed so far (does not reset). */
    std::uint32_t value() const { return ~state; }

    /** Restart the computation. */
    void reset();

    /** One-shot convenience. */
    static std::uint32_t compute(const void *data, std::size_t len);

  private:
    std::uint32_t state;
};

} // namespace hmcsim

#endif // HMCSIM_PROTOCOL_CRC_HH
