/**
 * @file
 * Read tag pool, modeling the 64-deep "Rd. Tag Pool" inside each GUPS
 * port (Fig. 4b). A port may not issue a read while no tag is free;
 * the pool is therefore the mechanism that bounds per-port outstanding
 * reads and, via Little's law, sets high-load latency (Sec. IV-E3).
 */

#ifndef HMCSIM_PROTOCOL_TAG_POOL_HH
#define HMCSIM_PROTOCOL_TAG_POOL_HH

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/check.hh"

namespace hmcsim
{

/** Fixed-capacity allocator of small integer tags. */
class TagPool
{
  public:
    /** @param depth Number of tags; the AC-510 GUPS uses 64. */
    explicit TagPool(unsigned depth) : depth(depth)
    {
        free.reserve(depth);
        for (unsigned i = 0; i < depth; ++i)
            free.push_back(static_cast<std::uint16_t>(depth - 1 - i));
    }

    /** True when at least one tag is available. */
    bool available() const { return !free.empty(); }

    /** Number of tags currently allocated. */
    unsigned inUse() const
    {
        return depth - static_cast<unsigned>(free.size());
    }

    /** Total capacity. */
    unsigned capacity() const { return depth; }

    /** Allocate a tag; caller must check available() first. */
    std::uint16_t
    allocate()
    {
        HMCSIM_CHECK(!free.empty(), "tag pool exhausted (depth=%u)",
                     depth);
        const std::uint16_t tag = free.back();
        free.pop_back();
        return tag;
    }

    /** Return a tag to the pool. */
    void
    release(std::uint16_t tag)
    {
        HMCSIM_CHECK(tag < depth, "tag %u out of range (depth=%u)",
                     static_cast<unsigned>(tag), depth);
        HMCSIM_CHECK(free.size() < depth,
                     "release of tag %u into a full pool (double release)",
                     static_cast<unsigned>(tag));
        HMCSIM_DCHECK(!isFree(tag), "tag %u released while already free",
                      static_cast<unsigned>(tag));
        free.push_back(tag);
    }

    /** True when @p tag is currently in the free list (O(depth)). */
    bool
    isFree(std::uint16_t tag) const
    {
        for (const std::uint16_t t : free)
            if (t == tag)
                return true;
        return false;
    }

    /**
     * Audit the free list: every tag in range, no duplicates, size
     * within capacity. @return Empty when consistent, else a report.
     */
    std::string
    validate() const
    {
        if (free.size() > depth)
            return "free list larger than pool depth";
        std::vector<bool> seen(depth, false);
        for (const std::uint16_t tag : free) {
            if (tag >= depth) {
                std::ostringstream out;
                out << "free list holds out-of-range tag " << tag
                    << " (depth " << depth << ")";
                return out.str();
            }
            if (seen[tag]) {
                std::ostringstream out;
                out << "tag " << tag
                    << " appears twice in the free list (double release)";
                return out.str();
            }
            seen[tag] = true;
        }
        return {};
    }

  private:
    unsigned depth;
    std::vector<std::uint16_t> free;
};

/**
 * Invariant checker over a TagPool: the free list must stay
 * internally consistent (validate()), and when the owner supplies its
 * independent count of live tags, pool occupancy must equal it --
 * fewer means tags leaked (the port silently loses issue slots and
 * Little's law bends), more means a live tag was recycled (two
 * outstanding reads share an identity and responses cross-match).
 */
class TagPoolChecker : public InvariantChecker
{
  public:
    using LiveCountFn = std::function<std::uint64_t()>;

    /**
     * @param name Checker name for diagnostics.
     * @param pool The pool to audit (must outlive the checker).
     * @param live_count Optional independent count of tags the owner
     *        believes are allocated; pass nullptr to skip.
     */
    TagPoolChecker(std::string name, const TagPool &pool,
                   LiveCountFn live_count = nullptr)
        : InvariantChecker(std::move(name)), pool(pool),
          liveCount(std::move(live_count))
    {
    }

    std::string
    check(Tick) const override
    {
        std::string report = pool.validate();
        if (!report.empty())
            return report;
        if (liveCount) {
            const std::uint64_t live = liveCount();
            if (live != pool.inUse()) {
                std::ostringstream out;
                out << "tag accounting mismatch: pool has "
                    << pool.inUse() << " tags allocated but owner has "
                    << live << " live requests"
                    << (pool.inUse() > live ? " (tag leak)"
                                            : " (tag reuse)");
                return out.str();
            }
        }
        return {};
    }

  private:
    const TagPool &pool;
    LiveCountFn liveCount;
};

} // namespace hmcsim

#endif // HMCSIM_PROTOCOL_TAG_POOL_HH
