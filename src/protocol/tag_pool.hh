/**
 * @file
 * Read tag pool, modeling the 64-deep "Rd. Tag Pool" inside each GUPS
 * port (Fig. 4b). A port may not issue a read while no tag is free;
 * the pool is therefore the mechanism that bounds per-port outstanding
 * reads and, via Little's law, sets high-load latency (Sec. IV-E3).
 */

#ifndef HMCSIM_PROTOCOL_TAG_POOL_HH
#define HMCSIM_PROTOCOL_TAG_POOL_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace hmcsim
{

/** Fixed-capacity allocator of small integer tags. */
class TagPool
{
  public:
    /** @param depth Number of tags; the AC-510 GUPS uses 64. */
    explicit TagPool(unsigned depth) : depth(depth)
    {
        free.reserve(depth);
        for (unsigned i = 0; i < depth; ++i)
            free.push_back(static_cast<std::uint16_t>(depth - 1 - i));
    }

    /** True when at least one tag is available. */
    bool available() const { return !free.empty(); }

    /** Number of tags currently allocated. */
    unsigned inUse() const
    {
        return depth - static_cast<unsigned>(free.size());
    }

    /** Total capacity. */
    unsigned capacity() const { return depth; }

    /** Allocate a tag; caller must check available() first. */
    std::uint16_t
    allocate()
    {
        HMCSIM_ASSERT(!free.empty(), "tag pool exhausted");
        const std::uint16_t tag = free.back();
        free.pop_back();
        return tag;
    }

    /** Return a tag to the pool. */
    void
    release(std::uint16_t tag)
    {
        HMCSIM_ASSERT(tag < depth, "tag out of range");
        HMCSIM_ASSERT(free.size() < depth, "double release");
        free.push_back(tag);
    }

  private:
    unsigned depth;
    std::vector<std::uint16_t> free;
};

} // namespace hmcsim

#endif // HMCSIM_PROTOCOL_TAG_POOL_HH
